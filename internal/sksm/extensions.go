package sksm

import (
	"fmt"

	"minimaltcb/internal/cpu"
)

// This file implements the §6 extensions the paper sketches beyond its
// core recommendations: joining additional CPUs to a running PAL
// (multicore PALs) and the bookkeeping that keeps the join sound across
// suspension.

// Join adds core c to an executing PAL: the memory controller grants the
// core access to the PAL's pages, and the SECB records the membership.
// The paper motivates this for PALs whose threads communicate too often to
// be split into separate single-CPU PALs (§6 "Multicore PALs").
func (mg *Manager) Join(c *cpu.CPU, s *SECB) error {
	if s.State != StateExecute {
		return fmt.Errorf("%w: join while %v (PAL must be executing)", ErrBadState, s.State)
	}
	if c.ID == s.OwnerCPU {
		return fmt.Errorf("sksm: CPU%d already owns the PAL", c.ID)
	}
	for _, id := range s.JoinedCPUs {
		if id == c.ID {
			return fmt.Errorf("sksm: CPU%d already joined", c.ID)
		}
	}
	if err := mg.Kernel.Machine.Chipset.ShareRegion(s.Region, s.OwnerCPU, c.ID); err != nil {
		return err
	}
	s.JoinedCPUs = append(s.JoinedCPUs, c.ID)
	// The joining core enters the PAL's trusted state too: clean
	// registers, interrupts off, confined to the PAL region.
	c.Reset()
	mg.Kernel.Machine.Clock.Advance(c.Params.InitCost)
	c.EnterRegion(s.Region, s.Entry)
	c.SetService(mg.serviceFor(s))
	return nil
}

// Leave removes a joined core from the PAL, clearing its state and
// revoking its page access.
func (mg *Manager) Leave(c *cpu.CPU, s *SECB) error {
	idx := -1
	for i, id := range s.JoinedCPUs {
		if id == c.ID {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("sksm: CPU%d has not joined this PAL", c.ID)
	}
	if err := mg.Kernel.Machine.Chipset.UnshareRegion(s.Region, c.ID); err != nil {
		return err
	}
	c.ClearMicroarchState()
	s.JoinedCPUs = append(s.JoinedCPUs[:idx], s.JoinedCPUs[idx+1:]...)
	return nil
}

// SuspendAll suspends a multicore PAL: joined cores leave first (their
// access is revoked and microarchitectural state cleared), then the owner
// suspends normally. Membership is not preserved across suspension — the
// OS re-joins workers after resume, mirroring how the page-table shares
// are dropped by the memory controller on seclusion.
func (mg *Manager) SuspendAll(owner *cpu.CPU, s *SECB) error {
	cores := mg.Kernel.Machine.CPUs
	for _, id := range append([]int(nil), s.JoinedCPUs...) {
		if err := mg.Leave(cores[id], s); err != nil {
			return err
		}
	}
	return mg.Suspend(owner, s)
}
