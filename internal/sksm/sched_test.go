package sksm

import (
	"testing"
	"time"

	"minimaltcb/internal/pal"
)

func TestSchedulerRunsMorePALsThanCores(t *testing.T) {
	// 4 cores (3 PAL cores), 6 concurrent PALs: multiprogramming needs
	// context switching, which needs one sePCR per live PAL.
	mg := newManager(t, 6)
	sch := NewScheduler(mg)
	var secbs []*SECB
	for i := 0; i < 6; i++ {
		im := buildCounter(t)
		s, err := mg.NewSECB(im, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		secbs = append(secbs, s)
	}
	faults, err := sch.RunAll(secbs)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	for i, s := range secbs {
		if s.State != StateDone || s.ExitStatus != 0 {
			t.Fatalf("PAL %d: state %v exit %d", i, s.State, s.ExitStatus)
		}
		if len(s.Output) != 4 || s.Output[0] != 5 {
			t.Fatalf("PAL %d output % x", i, s.Output)
		}
		// Each PAL was suspended and resumed (round-robin interleaving).
		if s.Resumes == 0 {
			t.Fatalf("PAL %d never context-switched", i)
		}
	}
}

func TestSchedulerKillsFaultingPAL(t *testing.T) {
	mg := newManager(t, 3)
	sch := NewScheduler(mg)
	good1, _ := mg.NewSECB(buildCounter(t), 0, 0)
	bad, _ := mg.NewSECB(pal.MustBuild(`
		svc 1
		ldi r0, 1
		ldi r1, 0
		divu r0, r1
	`), 0, 0)
	good2, _ := mg.NewSECB(buildCounter(t), 0, 0)
	faults, err := sch.RunAll([]*SECB{good1, bad, good2})
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 || faults[1] == nil {
		t.Fatalf("faults %v, want exactly PAL 1", faults)
	}
	if good1.State != StateDone || good2.State != StateDone {
		t.Fatal("healthy PALs did not finish")
	}
	if bad.State != StateDone {
		t.Fatalf("faulting PAL state %v, want Done (SKILLed)", bad.State)
	}
}

func TestSchedulerConcurrentWithLegacyAccounting(t *testing.T) {
	mg := newManager(t, 4)
	sch := NewScheduler(mg)
	var secbs []*SECB
	for i := 0; i < 3; i++ {
		s, _ := mg.NewSECB(buildCounter(t), 0, 50*time.Microsecond)
		secbs = append(secbs, s)
	}
	var legacyTicks int
	faults, err := sch.RunConcurrently(secbs, func(elapsed int64) {
		legacyTicks++
		if elapsed < 0 {
			t.Fatal("negative round time")
		}
	})
	if err != nil || len(faults) != 0 {
		t.Fatalf("%v %v", faults, err)
	}
	if legacyTicks == 0 {
		t.Fatal("legacy callback never invoked")
	}
	// Core 0 (legacy) must have no PAL busy time; PAL cores must.
	if mg.Kernel.Machine.CPUs[0].Timeline.Busy != 0 {
		t.Fatal("legacy core charged with PAL work")
	}
	palBusy := time.Duration(0)
	for _, id := range sch.PALCores {
		palBusy += mg.Kernel.Machine.CPUs[id].Timeline.Busy
	}
	if palBusy == 0 {
		t.Fatal("no PAL core busy time recorded")
	}
}

func TestSchedulerSingleCoreMachine(t *testing.T) {
	mg := func() *Manager {
		// Build a 1-CPU recommended machine.
		p := platformRecommendedSingleCore(t)
		return p
	}()
	sch := NewScheduler(mg)
	if len(sch.PALCores) != 1 || sch.PALCores[0] != 0 {
		t.Fatalf("single-core PAL cores %v", sch.PALCores)
	}
	s, _ := mg.NewSECB(buildCounter(t), 0, 0)
	faults, err := sch.RunAll([]*SECB{s})
	if err != nil || len(faults) != 0 {
		t.Fatalf("%v %v", faults, err)
	}
}
