package sksm

import (
	"testing"

	"minimaltcb/internal/pal"
)

// TestFreeSePCRsTracksBankState walks a PAL through its life cycle and
// checks that FreeSePCRs — the admission-control reading internal/palsvc
// uses — follows the bank: allocation and clean exit both leave the
// register occupied (Exclusive, then Quote) until untrusted code quotes it.
func TestFreeSePCRsTracksBankState(t *testing.T) {
	mg := newManager(t, 3)
	if got := mg.FreeSePCRs(); got != 3 {
		t.Fatalf("fresh bank: FreeSePCRs = %d, want 3", got)
	}

	im := pal.MustBuild("ldi r0, 0\nsvc 0")
	s, err := mg.NewSECB(im, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := mg.Kernel.Machine.CPUs[1]
	if err := mg.RunToCompletion(c, s); err != nil {
		t.Fatal(err)
	}
	// Clean exit moved the register Exclusive -> Quote: still occupied.
	if got := mg.FreeSePCRs(); got != 2 {
		t.Fatalf("after SFREE: FreeSePCRs = %d, want 2 (register parked in Quote state)", got)
	}

	if _, err := mg.QuoteAfterExit(s, []byte("capacity nonce")); err != nil {
		t.Fatal(err)
	}
	if got := mg.FreeSePCRs(); got != 3 {
		t.Fatalf("after quote: FreeSePCRs = %d, want 3", got)
	}
	if err := mg.Release(s); err != nil {
		t.Fatal(err)
	}
}
