package sksm

import (
	"errors"
	"testing"

	"minimaltcb/internal/chaos"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// TestLaunchFailureRollsBackAndReleasesPages pins the SLAUNCH failure
// rollback: an injected TPM allocation fault aborts the launch, the SECB
// rolls back to Start, and Release from Start returns every page — the
// leak the old StateDone-only Release would have made permanent.
func TestLaunchFailureRollsBackAndReleasesPages(t *testing.T) {
	mg := newManager(t, 2)
	inj := chaos.New(5, chaos.Profile{TPMFailFirst: 1})
	mg.Kernel.Machine.InstallFaults(inj.TPMHook(0))
	base := mg.Kernel.Alloc.FreePages()

	im := pal.MustBuild("ldi r0, 0\nsvc 0")
	s, err := mg.NewSECB(im, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	core := mg.Kernel.Machine.CPUs[1]
	_, err = mg.RunSlice(core, s)
	if err == nil {
		t.Fatal("launch succeeded despite injected TPM allocation fault")
	}
	if !errors.Is(err, ErrLaunchFailed) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("launch error chain lost a cause: %v", err)
	}
	if s.State != StateStart {
		t.Fatalf("failed launch left SECB in %v, want Start", s.State)
	}
	// The aborted launch holds no sePCR — only pages — and Release must
	// take them back.
	if free := mg.FreeSePCRs(); free != 2 {
		t.Fatalf("failed launch leaked a sePCR: %d free of 2", free)
	}
	if err := mg.Release(s); err != nil {
		t.Fatal(err)
	}
	if got := mg.Kernel.Alloc.FreePages(); got != base {
		t.Fatalf("leaked pages: %d free after release, want %d", got, base)
	}

	// The first-N fault is exhausted; the same manager launches cleanly.
	s2, err := mg.NewSECB(im, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reason, err := mg.RunSlice(core, s2); err != nil || reason != cpu.StopHalt {
		t.Fatalf("relaunch after injected fault: %v %v", reason, err)
	}
	if _, err := mg.QuoteAfterExit(s2, []byte("n")); err != nil {
		t.Fatal(err)
	}
	if err := mg.Release(s2); err != nil {
		t.Fatal(err)
	}
	if got := mg.Kernel.Alloc.FreePages(); got != base {
		t.Fatalf("pages after clean run: %d, want %d", got, base)
	}
}

// TestInjectedSliceFaultFollowsRealFaultPath drives a spurious chaos fault
// through the manager: the PAL suspends with its state secluded, the error
// chain carries both ErrPALFault and the injected cause, and SKILL+Release
// reclaim the register and pages exactly like a hardware-detected
// violation.
func TestInjectedSliceFaultFollowsRealFaultPath(t *testing.T) {
	mg := newManager(t, 2)
	inj := chaos.New(5, chaos.Profile{PALFaultFirst: 1})
	mg.Chaos = inj.SKSMHook(0)
	base := mg.Kernel.Alloc.FreePages()

	im := pal.MustBuild("svc 1\nldi r0, 0\nsvc 0") // yields once
	s, err := mg.NewSECB(im, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	core := mg.Kernel.Machine.CPUs[1]
	reason, err := mg.RunSlice(core, s)
	if err == nil {
		t.Fatal("yielding slice did not pick up the injected fault")
	}
	if reason != cpu.StopFault {
		t.Fatalf("stop reason %v, want StopFault", reason)
	}
	if !errors.Is(err, ErrPALFault) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("fault chain incomplete: %v", err)
	}
	if s.State != StateSuspend {
		t.Fatalf("faulted PAL in %v, want Suspend (state secluded for SKILL)", s.State)
	}
	if err := mg.SKILL(s); err != nil {
		t.Fatal(err)
	}
	if err := mg.Release(s); err != nil {
		t.Fatal(err)
	}
	if free := mg.FreeSePCRs(); free != 2 {
		t.Fatalf("SKILL leaked a sePCR: %d free of 2", free)
	}
	if got := mg.Kernel.Alloc.FreePages(); got != base {
		t.Fatalf("SKILL leaked pages: %d free, want %d", got, base)
	}
	// The kill marker, not the PAL measurement, is what any later quote
	// of that register would show — §5.5's tamper evidence. The register
	// is Free now, so just confirm the TPM saw the kill transition.
	if n := mg.Kernel.Machine.TPM().NumSePCRs(); n != 2 {
		t.Fatalf("bank size %d", n)
	}
}

// TestChaosHookOffCostsNothing pins the disabled-path contract: a manager
// without a Chaos hook takes the nil-check fast path, and a TPM without a
// fault hook allocates nothing extra per command.
func TestChaosHookOffCostsNothing(t *testing.T) {
	mg := newManager(t, 2)
	if mg.Chaos != nil {
		t.Fatal("fresh manager has a chaos hook")
	}
	chip := mg.Kernel.Machine.TPM()
	meas := tpm.Measure([]byte("pal"))
	allocs := testing.AllocsPerRun(200, func() {
		h, err := chip.AllocateSePCR(0, meas)
		if err != nil {
			t.Fatal(err)
		}
		if err := chip.ReleaseSePCR(h, 0); err != nil {
			t.Fatal(err)
		}
		if err := chip.FreeSePCR(h); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("chaos-off TPM path allocates %.1f per alloc/release/free cycle, want 0", allocs)
	}
}
