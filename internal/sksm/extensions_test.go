package sksm

import (
	"errors"
	"testing"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
)

// launchExecuting launches a PAL that yields immediately so tests can hold
// it in the Execute state: SLAUNCH it without running.
func launchExecuting(t *testing.T, mg *Manager, src string, coreID int) (*SECB, *cpu.CPU) {
	t.Helper()
	im := pal.MustBuild(src)
	s, err := mg.NewSECB(im, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	core := mg.Kernel.Machine.CPUs[coreID]
	if err := mg.SLAUNCH(core, s); err != nil {
		t.Fatal(err)
	}
	return s, core
}

func TestJoinGrantsWorkerAccess(t *testing.T) {
	mg := newManager(t, 2)
	s, owner := launchExecuting(t, mg, `
		ldi r0, 0
		svc 0
	shared:	.word 0
	stack:	.space 32
	`, 1)
	worker := mg.Kernel.Machine.CPUs[2]

	// Before joining: the worker is refused.
	if _, err := mg.Kernel.Machine.Chipset.CPURead(worker.ID, s.Region.Base, 4); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("unjoined worker read PAL memory: %v", err)
	}
	if err := mg.Join(worker, s); err != nil {
		t.Fatal(err)
	}
	// Joined worker reads and writes PAL memory alongside the owner.
	if err := mg.Kernel.Machine.Chipset.CPUWrite(worker.ID, s.Region.Base+12, []byte{42}); err != nil {
		t.Fatalf("joined worker write: %v", err)
	}
	got, err := mg.Kernel.Machine.Chipset.CPURead(owner.ID, s.Region.Base+12, 1)
	if err != nil || got[0] != 42 {
		t.Fatalf("owner sees %v, %v", got, err)
	}
	// A third, unjoined core is still refused.
	if _, err := mg.Kernel.Machine.Chipset.CPURead(3, s.Region.Base, 4); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("unjoined third core read PAL memory: %v", err)
	}
	// The joined worker can execute PAL code.
	if reason, err := worker.Run(0); err != nil || reason != cpu.StopHalt {
		t.Fatalf("worker run: %v %v", reason, err)
	}
	// Finish the PAL on the owner.
	if reason, err := owner.Run(0); err != nil || reason != cpu.StopHalt {
		t.Fatalf("owner run: %v %v", reason, err)
	}
	if err := mg.Leave(worker, s); err != nil {
		t.Fatal(err)
	}
	if err := mg.SFREE(owner, s); err != nil {
		t.Fatal(err)
	}
}

func TestJoinValidation(t *testing.T) {
	mg := newManager(t, 2)
	s, owner := launchExecuting(t, mg, "ldi r0, 0\nsvc 0", 1)
	worker := mg.Kernel.Machine.CPUs[2]

	if err := mg.Join(owner, s); err == nil {
		t.Fatal("owner joined its own PAL")
	}
	if err := mg.Join(worker, s); err != nil {
		t.Fatal(err)
	}
	if err := mg.Join(worker, s); err == nil {
		t.Fatal("double join accepted")
	}
	if err := mg.Leave(mg.Kernel.Machine.CPUs[3], s); err == nil {
		t.Fatal("leave by non-member accepted")
	}
	// A SECB that is not executing cannot be joined.
	other, _ := mg.NewSECB(pal.MustBuild("ldi r0, 0\nsvc 0"), 0, 0)
	if err := mg.Join(worker, other); !errors.Is(err, ErrBadState) {
		t.Fatalf("join of non-executing SECB: %v", err)
	}
}

func TestSuspendAllRevokesJoins(t *testing.T) {
	mg := newManager(t, 2)
	s, owner := launchExecuting(t, mg, `
		svc 1
		ldi r0, 0
		svc 0
	secret: .ascii "shared secret"
	stack:	.space 32
	`, 1)
	worker := mg.Kernel.Machine.CPUs[2]
	if err := mg.Join(worker, s); err != nil {
		t.Fatal(err)
	}
	// Owner yields; suspend the whole multicore PAL.
	if reason, err := owner.Run(0); err != nil || reason != cpu.StopYield {
		t.Fatalf("%v %v", reason, err)
	}
	if err := mg.SuspendAll(owner, s); err != nil {
		t.Fatal(err)
	}
	if len(s.JoinedCPUs) != 0 {
		t.Fatal("join list survived suspension")
	}
	// Neither former member can touch the secluded pages.
	for _, id := range []int{1, 2} {
		if _, err := mg.Kernel.Machine.Chipset.CPURead(id, s.Region.Base, 8); !errors.Is(err, mem.ErrDenied) {
			t.Fatalf("CPU%d read suspended multicore PAL: %v", id, err)
		}
	}
	// Worker registers were cleared on leave.
	for i, r := range worker.Regs {
		if r != 0 {
			t.Fatalf("worker r%d = %#x after suspend", i, r)
		}
	}
	// Resume and finish.
	if _, err := mg.RunSlice(owner, s); err != nil {
		t.Fatal(err)
	}
}
