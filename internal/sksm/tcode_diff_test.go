package sksm

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// System-level differential tests for the threaded-code tier: a full SKSM
// lifecycle — SLAUNCH, preemption, SYIELD suspend/resume, SFREE, quote —
// must be bit-identical with block compilation on and off. These are the
// end-to-end counterpart of the cpu-package unit differentials: here the
// tier also has to survive ownership transitions (every suspend/resume
// bumps the page versions under its compiled blocks) and memory reuse
// across SKILL/Release cycles.

// hotPALSource loops well past the compile threshold inside a single
// launch, so compiled blocks execute even on the first job.
const hotPALSource = `
	ldi	r1, acc
	ldi	r0, 0
	ldi	r3, 40
loop:	addi	r0, 1
	load	r2, [r1]
	add	r2, r0
	store	r2, [r1]
	cmp	r0, r3
	jnz	loop
	ldi	r0, acc
	ldi	r1, 4
	svc	6		; output the accumulator
	ldi	r0, 0
	svc	0
acc:	.word 0
stack:	.space 64
`

type jobResult struct {
	meas   tpm.Digest
	out    []byte
	status uint32
	clock  time.Duration
	quote  *tpm.Quote
}

// runJobs executes `jobs` back-to-back launches of image on one core with
// the tier on or off, returning every job's observables. The quantum
// forces mid-loop preemption, so suspend/resume cycles interleave with
// compiled-block execution.
func runJobs(t *testing.T, image pal.Image, compile bool, jobs int, quantumInstrs int) []jobResult {
	t.Helper()
	mg := newManager(t, 2)
	core := mg.Kernel.Machine.CPUs[1]
	core.SetBlockCompile(compile)
	quantum := time.Duration(quantumInstrs) * core.Params.InstrCost
	var res []jobResult
	for job := 0; job < jobs; job++ {
		s, err := mg.NewSECB(image, 1, quantum)
		if err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if err := mg.RunToCompletion(core, s); err != nil {
			t.Fatalf("job %d (compile=%v): %v", job, compile, err)
		}
		q, err := mg.QuoteAfterExit(s, []byte("tcode-diff"))
		if err != nil {
			t.Fatalf("job %d quote: %v", job, err)
		}
		if err := mg.Release(s); err != nil {
			t.Fatalf("job %d release: %v", job, err)
		}
		res = append(res, jobResult{
			meas: s.Measurement, out: s.Output, status: s.ExitStatus,
			clock: mg.Kernel.Machine.Clock.Now(), quote: q,
		})
	}
	return res
}

func sameJobs(t *testing.T, on, off []jobResult) {
	t.Helper()
	for i := range on {
		if on[i].meas != off[i].meas {
			t.Errorf("job %d: measurements diverge", i)
		}
		if !bytes.Equal(on[i].out, off[i].out) {
			t.Errorf("job %d: outputs diverge: compiled %v, interpreted %v", i, on[i].out, off[i].out)
		}
		if on[i].status != off[i].status {
			t.Errorf("job %d: exit status diverges: %d vs %d", i, on[i].status, off[i].status)
		}
		if on[i].clock != off[i].clock {
			t.Errorf("job %d: virtual clocks diverge: %v vs %v", i, on[i].clock, off[i].clock)
		}
		if !reflect.DeepEqual(on[i].quote, off[i].quote) {
			t.Errorf("job %d: quotes diverge", i)
		}
	}
}

// TestBlockCompileDifferentialLifecycle: hot straight-line jobs, no
// preemption — later jobs run almost entirely from compiled blocks, and
// every observable (including the signed quote and the per-job virtual
// clock) must match the interpreter's.
func TestBlockCompileDifferentialLifecycle(t *testing.T) {
	image := pal.MustBuild(hotPALSource)
	on := runJobs(t, image, true, 12, 0)
	off := runJobs(t, image, false, 12, 0)
	sameJobs(t, on, off)
	if len(on[11].out) != 4 || on[11].out[0] != 820&0xff {
		t.Fatalf("hot PAL output % x, want sum 1..40 = 820", on[11].out)
	}
}

// TestBlockCompileDifferentialPreempted: a tight preemption quantum cuts
// blocks mid-stream; every suspend/resume also bumps the page versions
// under the compiled code, exercising lookup-time revalidation on every
// slice.
func TestBlockCompileDifferentialPreempted(t *testing.T) {
	image := pal.MustBuild(hotPALSource)
	for _, q := range []int{3, 7, 17} {
		on := runJobs(t, image, true, 10, q)
		off := runJobs(t, image, false, 10, q)
		sameJobs(t, on, off)
	}
}

// TestBlockCompileDifferentialYield: the counter PAL suspends itself with
// SYIELD between iterations, so its state crosses seclusion/restore cycles
// while its leaders heat up across slices.
func TestBlockCompileDifferentialYield(t *testing.T) {
	image := buildCounter(t)
	on := runJobs(t, image, true, 12, 0)
	off := runJobs(t, image, false, 12, 0)
	sameJobs(t, on, off)
	if len(on[0].out) != 4 || on[0].out[0] != 5 {
		t.Fatalf("counter output % x, want 5", on[0].out)
	}
}

// TestBlockCompileMemoryReuseAcrossImages: two different PALs alternate
// over the same physical pages (the first-fit allocator reuses the freed
// range). A compiled block from image A must never execute for image B —
// the block cache keys on content-revalidated physical words, so the swap
// forces invalidation/recompile, never stale execution.
func TestBlockCompileMemoryReuseAcrossImages(t *testing.T) {
	a := pal.MustBuild(hotPALSource)
	// Same shape, different arithmetic: a stale block would be visible in
	// the output immediately.
	b := pal.MustBuild(`
	ldi	r1, acc
	ldi	r0, 0
	ldi	r3, 40
loop:	addi	r0, 1
	load	r2, [r1]
	add	r2, r0
	add	r2, r0
	store	r2, [r1]
	cmp	r0, r3
	jnz	loop
	ldi	r0, acc
	ldi	r1, 4
	svc	6
	ldi	r0, 0
	svc	0
acc:	.word 0
stack:	.space 64
	`)
	mg := newManager(t, 2)
	core := mg.Kernel.Machine.CPUs[1]
	var outA, outB []byte
	for job := 0; job < 12; job++ {
		image := a
		if job%2 == 1 {
			image = b
		}
		s, err := mg.NewSECB(image, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := mg.RunToCompletion(core, s); err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if _, err := mg.QuoteAfterExit(s, []byte("n")); err != nil { // frees the sePCR
			t.Fatalf("job %d quote: %v", job, err)
		}
		if err := mg.Release(s); err != nil {
			t.Fatal(err)
		}
		if job%2 == 0 {
			outA = s.Output
		} else {
			outB = s.Output
		}
	}
	// sum 1..40 = 820; with the doubled add, 2*820 = 1640.
	if len(outA) != 4 || int(outA[0])|int(outA[1])<<8 != 820 {
		t.Fatalf("image A output % x, want 820", outA)
	}
	if len(outB) != 4 || int(outB[0])|int(outB[1])<<8 != 1640 {
		t.Fatalf("image B output % x, want 1640 — a stale compiled block leaked across images", outB)
	}
	if st := core.TCodeStatsSnapshot(); st.Execs == 0 {
		t.Fatalf("alternating workload never reached the compiled tier: %+v", st)
	}
}
