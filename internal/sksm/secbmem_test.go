package sksm

import (
	"errors"
	"testing"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
)

func TestSECBPageContiguousWithPAL(t *testing.T) {
	mg := newManager(t, 1)
	s, err := mg.NewSECB(pal.MustBuild("ldi r0, 0\nsvc 0"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.SECBRegion.End() != s.Region.Base {
		t.Fatalf("SECB [%d,%d) not directly below PAL [%d,%d)",
			s.SECBRegion.Base, s.SECBRegion.End(), s.Region.Base, s.Region.End())
	}
	if s.SECBRegion.Size != mem.PageSize {
		t.Fatalf("SECB page size %d", s.SECBRegion.Size)
	}
}

func TestSuspendWritesStateToSECBPage(t *testing.T) {
	mg := newManager(t, 1)
	s, _ := mg.NewSECB(pal.MustBuild(`
		ldi r0, 0xbeef
		lui r0, 0xdead
		svc 1
		svc 0
	`), 0, 0)
	core := mg.Kernel.Machine.CPUs[1]
	if _, err := mg.RunSlice(core, s); err != nil {
		t.Fatal(err)
	}
	// The SECB page holds the serialized state (read with hardware
	// access; software is locked out).
	st, handle, err := readArchState(mg.Kernel.Machine.Chipset.Memory(), s.SECBRegion.Base)
	if err != nil {
		t.Fatal(err)
	}
	if st.Regs[0] != 0xdeadbeef {
		t.Fatalf("saved r0 = %#x", st.Regs[0])
	}
	if handle != s.SePCRHandle {
		t.Fatalf("saved handle %d != %d", handle, s.SePCRHandle)
	}
}

func TestSECBPageInaccessibleToOSWhileSuspended(t *testing.T) {
	mg := newManager(t, 1)
	s, _ := mg.NewSECB(pal.MustBuild("svc 1\nldi r0, 0\nsvc 0"), 0, 0)
	core := mg.Kernel.Machine.CPUs[1]
	if _, err := mg.RunSlice(core, s); err != nil {
		t.Fatal(err)
	}
	// The OS cannot read the saved register file or forge it.
	cs := mg.Kernel.Machine.Chipset
	if _, err := cs.CPURead(0, s.SECBRegion.Base, secbBlockSize); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("OS read saved CPU state: %v", err)
	}
	if err := cs.CPUWrite(0, s.SECBRegion.Base+36, []byte{0xff, 0xff, 0, 0}); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("OS forged saved PC: %v", err)
	}
}

func TestSECBPageInaccessibleToPAL(t *testing.T) {
	// The PAL's own address space starts at its region base; negative
	// offsets (into the SECB page) are unreachable because PAL-relative
	// addresses are unsigned and bounds-checked.
	mg := newManager(t, 1)
	s, _ := mg.NewSECB(pal.MustBuild(`
		ldi	r0, 0
		addi	r0, -4	; 0xfffffffc: wraps far beyond the region
		load	r1, [r0]
		svc	0
	`), 0, 0)
	_, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s)
	if !errors.Is(err, ErrPALFault) {
		t.Fatalf("PAL reached outside its region: %v", err)
	}
}

func TestResumeRestoresFromMemoryNotStruct(t *testing.T) {
	// Corrupting the Go-side working copy must not matter: resume reads
	// the hardware copy in the SECB page.
	mg := newManager(t, 1)
	s, _ := mg.NewSECB(pal.MustBuild(`
		ldi r0, 42
		svc 1
		addi r0, 1
		mov r1, r0
		ldi r0, out
		store r1, [r0]
		ldi r1, 4
		svc 6
		ldi r0, 0
		svc 0
	out:	.word 0
	stack:	.space 32
	`), 0, 0)
	core := mg.Kernel.Machine.CPUs[1]
	if _, err := mg.RunSlice(core, s); err != nil {
		t.Fatal(err)
	}
	// "OS" tampers with the software-visible struct copy.
	s.CPUState = cpu.ArchState{}
	if _, err := mg.RunSlice(core, s); err != nil {
		t.Fatal(err)
	}
	if len(s.Output) != 4 || s.Output[0] != 43 {
		t.Fatalf("output % x, want 43 (resume used the protected copy)", s.Output)
	}
}

func TestSKILLErasesSECBPageToo(t *testing.T) {
	mg := newManager(t, 1)
	s, _ := mg.NewSECB(pal.MustBuild("svc 1\nldi r0, 0\nsvc 0"), 0, 0)
	if _, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s); err != nil {
		t.Fatal(err)
	}
	if err := mg.SKILL(s); err != nil {
		t.Fatal(err)
	}
	// The saved register file is gone along with the PAL's pages.
	b, err := mg.Kernel.Machine.Chipset.Memory().ReadRaw(s.SECBRegion.Base, secbBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("SKILL left saved CPU state behind")
		}
	}
}

func TestForgedSECBCannotResumeWithAttackerState(t *testing.T) {
	// The OS forges a control block claiming Suspend state over a real
	// suspended PAL's pages, with attacker-chosen registers/PC in the
	// software-visible struct and no protected control page. Resume must
	// refuse rather than honor the forged state.
	mg := newManager(t, 2)
	victim, _ := mg.NewSECB(pal.MustBuild(`
		svc 1
		ldi r0, 0
		svc 0
	secret:	.ascii "sealed-adjacent data"
	stack:	.space 32
	`), 0, 0)
	core1 := mg.Kernel.Machine.CPUs[1]
	if _, err := mg.RunSlice(core1, victim); err != nil {
		t.Fatal(err)
	}

	forged := &SECB{
		Image:        victim.Image,
		Region:       victim.Region, // the victim's pages
		Entry:        victim.Entry,
		MeasuredFlag: true,
		SePCRHandle:  victim.SePCRHandle,
		OwnerCPU:     victim.OwnerCPU,
		State:        StateSuspend,
		CPUState:     cpu.ArchState{PC: 24}, // attacker-chosen resume point
	}
	err := mg.SLAUNCH(mg.Kernel.Machine.CPUs[2], forged)
	if !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("forged resume: %v", err)
	}
	// Victim's pages remain protected and the genuine resume still works.
	st, _ := mg.Kernel.Machine.Chipset.RegionState(victim.Region)
	if st != mem.AccessNone {
		t.Fatalf("victim pages %v after forged resume attempt", st)
	}
	if _, err := mg.RunSlice(core1, victim); err != nil {
		t.Fatalf("genuine resume broken: %v", err)
	}
}

func TestReadArchStateRejectsUnsuspendedPage(t *testing.T) {
	mg := newManager(t, 1)
	s, _ := mg.NewSECB(pal.MustBuild("ldi r0, 0\nsvc 0"), 0, 0)
	if _, _, err := readArchState(mg.Kernel.Machine.Chipset.Memory(), s.SECBRegion.Base); err == nil {
		t.Fatal("fresh SECB page parsed as saved state")
	}
}

func TestArchStateRoundTripsThroughMemory(t *testing.T) {
	mg := newManager(t, 1)
	m := mg.Kernel.Machine.Chipset.Memory()
	var st cpu.ArchState
	for i := range st.Regs {
		st.Regs[i] = uint32(0x1010101 * (i + 1))
	}
	st.PC = 0x1234
	st.FlagZ, st.FlagN = true, true
	st.IntrEnabled = true
	st.IDT[3] = 0x77
	if err := writeArchState(m, 0, st, 5); err != nil {
		t.Fatal(err)
	}
	got, handle, err := readArchState(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != st || handle != 5 {
		t.Fatalf("round trip mismatch:\n%+v\n%+v handle=%d", st, got, handle)
	}
}
