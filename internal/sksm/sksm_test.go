package sksm

import (
	"errors"
	"testing"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/tpm"
)

func TestStateStrings(t *testing.T) {
	names := map[State]string{
		StateStart: "Start", StateProtect: "Protect", StateMeasure: "Measure",
		StateExecute: "Execute", StateSuspend: "Suspend", StateDone: "Done",
	}
	for st, want := range names {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if State(99).String() == "" {
		t.Fatal("unknown state renders empty")
	}
}

func TestSchedulerCPUAccessor(t *testing.T) {
	mg := newManager(t, 1)
	sch := NewScheduler(mg)
	if sch.CPU(2) != mg.Kernel.Machine.CPUs[2] {
		t.Fatal("CPU accessor wrong")
	}
}

// platformRecommendedSingleCore builds a 1-CPU recommended machine.
func platformRecommendedSingleCore(t *testing.T) *Manager {
	t.Helper()
	p := platform.Recommended(platform.HPdc5750(), 2)
	p.KeyBits = 1024
	p.NumCPUs = 1
	m, err := platform.New(p)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewManager(osker.NewKernel(m))
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

// newManager builds a recommended-hardware dc5750 with n sePCRs.
func newManager(t *testing.T, sePCRs int) *Manager {
	t.Helper()
	p := platform.Recommended(platform.HPdc5750(), sePCRs)
	p.KeyBits = 1024
	p.NumCPUs = 4
	m, err := platform.New(p)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewManager(osker.NewKernel(m))
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

// counterPAL yields `yields` times, incrementing r-state in memory across
// suspensions, then outputs the count and exits.
const counterPALSource = `
	ldi	r1, count
	load	r0, [r1]
loop:
	addi	r0, 1
	store	r0, [r1]
	svc	1		; yield: state must survive suspension
	load	r0, [r1]
	ldi	r2, 5
	cmp	r0, r2
	jnz	loop
	ldi	r0, count
	ldi	r1, 4
	svc	6		; output the final count
	ldi	r0, 0
	svc	0
count:	.word 0
stack:	.space 64
`

func buildCounter(t *testing.T) pal.Image {
	t.Helper()
	im, err := pal.Build(counterPALSource)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestLifecycleFirstLaunch(t *testing.T) {
	mg := newManager(t, 2)
	im := pal.MustBuild("ldi r0, 9\nsvc 0")
	s, err := mg.NewSECB(im, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.State != StateStart || s.MeasuredFlag {
		t.Fatalf("fresh SECB: %v measured=%v", s.State, s.MeasuredFlag)
	}
	core := mg.Kernel.Machine.CPUs[1]
	reason, err := mg.RunSlice(core, s)
	if err != nil {
		t.Fatal(err)
	}
	if reason != cpu.StopHalt || s.State != StateDone {
		t.Fatalf("reason %v state %v", reason, s.State)
	}
	if s.ExitStatus != 9 {
		t.Fatalf("exit %d", s.ExitStatus)
	}
	// Pages back to ALL.
	st, err := mg.Kernel.Machine.Chipset.RegionState(s.Region)
	if err != nil || st != mem.AccessAll {
		t.Fatalf("region state %v %v", st, err)
	}
	// sePCR in Quote state, attestable from untrusted code.
	q, err := mg.QuoteAfterExit(s, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tpm.VerifyQuote(mg.Kernel.Machine.TPM().AIKPublic(), q); err != nil {
		t.Fatal(err)
	}
	// The quoted value is the PAL measurement chain.
	want := tpm.ExtendDigest(tpm.Digest{}, tpm.Measure(im.Bytes))
	if q.Composite != want {
		t.Fatal("quoted sePCR is not the PAL measurement")
	}
	if err := mg.Release(s); err != nil {
		t.Fatal(err)
	}
}

func TestYieldSuspendResumePreservesState(t *testing.T) {
	mg := newManager(t, 2)
	im := buildCounter(t)
	s, err := mg.NewSECB(im, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cores := mg.Kernel.Machine.CPUs
	coreIdx := 1
	for s.State != StateDone {
		// Resume on a different core each slice (§5.3).
		core := cores[1+coreIdx%3]
		coreIdx++
		if _, err := mg.RunSlice(core, s); err != nil {
			t.Fatal(err)
		}
		if s.State == StateSuspend {
			// While suspended: pages NONE, nobody can read.
			st, _ := mg.Kernel.Machine.Chipset.RegionState(s.Region)
			if st != mem.AccessNone {
				t.Fatalf("suspended region state %v", st)
			}
		}
	}
	if s.ExitStatus != 0 {
		t.Fatalf("exit %d", s.ExitStatus)
	}
	// Counter reached 5 across suspensions.
	if len(s.Output) != 4 || s.Output[0] != 5 {
		t.Fatalf("output % x, want count 5", s.Output)
	}
	if s.Resumes < 4 {
		t.Fatalf("resumes %d, want >=4", s.Resumes)
	}
}

func TestSuspendedStateInaccessibleToOS(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
		ldi r0, secret
		svc 1          ; yield while holding a secret in memory
		ldi r0, 0
		svc 0
	secret: .ascii "password"
	stack: .space 32
	`)
	s, _ := mg.NewSECB(im, 0, 0)
	core := mg.Kernel.Machine.CPUs[1]
	reason, err := mg.RunSlice(core, s)
	if err != nil || reason != cpu.StopYield {
		t.Fatalf("%v %v", reason, err)
	}
	// The untrusted OS (any other core) cannot read the secret.
	for _, id := range []int{0, 2, 3} {
		if _, err := mg.Kernel.Machine.Chipset.CPURead(id, s.Region.Base, 16); !errors.Is(err, mem.ErrDenied) {
			t.Fatalf("CPU%d read suspended PAL memory: %v", id, err)
		}
	}
	// Not even the core that ran it.
	if _, err := mg.Kernel.Machine.Chipset.CPURead(1, s.Region.Base, 16); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("former owner read suspended PAL memory: %v", err)
	}
	// Registers cleared — no secret residue in microarch state.
	for i, r := range core.Regs {
		if r != 0 {
			t.Fatalf("register r%d = %#x after suspend", i, r)
		}
	}
}

func TestSLAUNCHFailsOnPageConflict(t *testing.T) {
	mg := newManager(t, 2)
	im := pal.MustBuild("svc 1\nldi r0, 0\nsvc 0")
	a, _ := mg.NewSECB(im, 0, 0)
	core1 := mg.Kernel.Machine.CPUs[1]
	if _, err := mg.RunSlice(core1, a); err != nil {
		t.Fatal(err)
	} // a is suspended; pages NONE

	// Forge a SECB pointing at a's pages: SLAUNCH must refuse to measure
	// it as a fresh PAL only if pages conflict — NONE pages are claimable
	// on resume, so emulate the conflict with an Execute-state PAL.
	b, _ := mg.NewSECB(im, 0, 0)
	core2 := mg.Kernel.Machine.CPUs[2]
	if err := mg.SLAUNCH(core2, b); err != nil {
		t.Fatal(err)
	} // b executing on core2
	forged := &SECB{Image: im, Region: b.Region, Entry: im.Entry, SePCRHandle: -1, OwnerCPU: -1}
	core3 := mg.Kernel.Machine.CPUs[3]
	if err := mg.SLAUNCH(core3, forged); !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("overlapping SLAUNCH: %v", err)
	}
}

func TestSLAUNCHFailsOnSePCRExhaustion(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild("svc 1\nldi r0, 0\nsvc 0")
	a, _ := mg.NewSECB(im, 0, 0)
	if _, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], a); err != nil {
		t.Fatal(err)
	} // a suspended, holds the only sePCR
	b, _ := mg.NewSECB(im, 0, 0)
	err := mg.SLAUNCH(mg.Kernel.Machine.CPUs[2], b)
	if !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("launch without free sePCR: %v", err)
	}
	// Failure path must roll back memory protection.
	st, _ := mg.Kernel.Machine.Chipset.RegionState(b.Region)
	if st != mem.AccessAll {
		t.Fatalf("failed launch leaked protection: %v", st)
	}
}

func TestMeasuredFlagNotHonoredFromStart(t *testing.T) {
	mg := newManager(t, 2)
	im := pal.MustBuild("ldi r0, 0\nsvc 0")
	s, _ := mg.NewSECB(im, 0, 0)
	// Malicious OS sets MeasuredFlag on a fresh SECB hoping to skip
	// measurement; SLAUNCH from Start always measures.
	s.MeasuredFlag = true
	core := mg.Kernel.Machine.CPUs[1]
	if err := mg.SLAUNCH(core, s); err != nil {
		t.Fatal(err)
	}
	if s.SePCRHandle < 0 {
		t.Fatal("PAL ran without a sePCR binding")
	}
	v, _ := mg.Kernel.Machine.TPM().SePCRValue(s.SePCRHandle)
	if v != tpm.ExtendDigest(tpm.Digest{}, tpm.Measure(im.Bytes)) {
		t.Fatal("PAL ran unmeasured")
	}
}

func TestSKILLErasesAndFrees(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
		ldi r0, secret
		svc 1
		svc 0
	secret: .ascii "launch codes"
	stack: .space 32
	`)
	s, _ := mg.NewSECB(im, 0, 0)
	if _, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s); err != nil {
		t.Fatal(err)
	}
	if err := mg.SKILL(s); err != nil {
		t.Fatal(err)
	}
	if s.State != StateDone {
		t.Fatalf("state %v", s.State)
	}
	// Memory zeroed and back to ALL.
	b, err := mg.Kernel.Machine.Chipset.CPURead(0, s.Region.Base, s.Region.Size)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("killed PAL's memory not erased")
		}
	}
	// sePCR reusable.
	if _, err := mg.Kernel.Machine.TPM().AllocateSePCR(0, tpm.Digest{}); err != nil {
		t.Fatalf("sePCR not freed by SKILL: %v", err)
	}
}

func TestSKILLOnlyFromSuspend(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild("ldi r0, 0\nsvc 0")
	s, _ := mg.NewSECB(im, 0, 0)
	if err := mg.SKILL(s); !errors.Is(err, ErrBadState) {
		t.Fatalf("SKILL from Start: %v", err)
	}
}

func TestFaultingPALIsSuspendedThenKilled(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
		ldi r0, 1
		ldi r1, 0
		divu r0, r1
	`)
	s, _ := mg.NewSECB(im, 0, 0)
	_, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s)
	if !errors.Is(err, ErrPALFault) {
		t.Fatalf("fault: %v", err)
	}
	if s.State != StateSuspend {
		t.Fatalf("faulted PAL state %v, want Suspend", s.State)
	}
	if err := mg.SKILL(s); err != nil {
		t.Fatal(err)
	}
}

func TestPreemptionTimer(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
	spin:	jmp spin
	`)
	s, _ := mg.NewSECB(im, 0, 10*time.Microsecond)
	core := mg.Kernel.Machine.CPUs[1]
	reason, err := mg.RunSlice(core, s)
	if err != nil || reason != cpu.StopPreempted {
		t.Fatalf("%v %v", reason, err)
	}
	if s.State != StateSuspend {
		t.Fatalf("state %v", s.State)
	}
	// The wedged PAL is killable.
	if err := mg.SKILL(s); err != nil {
		t.Fatal(err)
	}
}

// §5.7: hardware context switch must cost microseconds, not hundreds of
// milliseconds — six orders of magnitude below the seal/unseal path.
func TestContextSwitchCostIsMicroseconds(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
		svc 1
		svc 1
		svc 1
		ldi r0, 0
		svc 0
	`)
	s, _ := mg.NewSECB(im, 0, 0)
	core := mg.Kernel.Machine.CPUs[1]
	if _, err := mg.RunSlice(core, s); err != nil {
		t.Fatal(err)
	}
	// Measure one suspend->resume round trip.
	clock := mg.Kernel.Machine.Clock
	start := clock.Now()
	if _, err := mg.RunSlice(core, s); err != nil {
		t.Fatal(err)
	}
	rt := clock.Now() - start
	// One resume (VM enter 558ns) + slice execution (few instructions)
	// + one suspend (VM exit 519ns): ~1.1 µs plus noise.
	if rt > 5*time.Microsecond {
		t.Fatalf("context-switch round trip %v, want microseconds", rt)
	}
}

func TestQuoteAfterExitRequiresDone(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild("svc 1\nldi r0, 0\nsvc 0")
	s, _ := mg.NewSECB(im, 0, 0)
	mg.RunSlice(mg.Kernel.Machine.CPUs[1], s)
	if _, err := mg.QuoteAfterExit(s, nil); !errors.Is(err, ErrBadState) {
		t.Fatalf("quote of suspended PAL: %v", err)
	}
	if err := mg.Release(s); !errors.Is(err, ErrBadState) {
		t.Fatalf("release of suspended PAL: %v", err)
	}
}

func TestManagerRequiresSePCRs(t *testing.T) {
	p := platform.HPdc5750() // stock hardware
	p.KeyBits = 1024
	m, err := platform.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(osker.NewKernel(m)); err == nil {
		t.Fatal("manager built on stock TPM")
	}
}

func TestSealUnsealViaSePCRAcrossSessions(t *testing.T) {
	// A PAL seals in one complete session and unseals in a brand-new
	// session (fresh SECB, possibly different sePCR).
	mg := newManager(t, 2)
	genSrc := `
		ldi	r0, data
		ldi	r1, 16
		svc	5
		ldi	r0, data
		ldi	r1, 16
		ldi	r2, blob
		svc	3
		mov	r1, r0
		ldi	r0, blob
		svc	6
		ldi	r0, 0
		svc	0
	data:	.space 16
	blob:	.space 1024
	stack:	.space 64
	`
	useSrc := `
		ldi	r0, blob
		ldi	r1, 1024
		svc	7
		mov	r1, r0
		ldi	r0, blob
		ldi	r2, data
		svc	4
		mov	r0, r1	; exit status = unseal status
		svc	0
	data:	.space 16
	blob:	.space 1024
	stack:	.space 64
	`
	_ = useSrc
	genIm := pal.MustBuild(genSrc)
	s1, _ := mg.NewSECB(genIm, 0, 0)
	core := mg.Kernel.Machine.CPUs[1]
	if err := mg.RunToCompletion(core, s1); err != nil {
		t.Fatal(err)
	}
	blob := s1.Output
	if _, err := mg.QuoteAfterExit(s1, []byte("n")); err != nil { // frees sePCR
		t.Fatal(err)
	}

	// Same PAL code relaunches with the blob as input.
	s2, _ := mg.NewSECB(genIm, 0, 0)
	s2.Input = blob
	// Replace program? No: the gen PAL ignores input. Instead unseal
	// directly through the TPM under the new session's sePCR to check
	// identity-based release.
	if err := mg.SLAUNCH(core, s2); err != nil {
		t.Fatal(err)
	}
	got, err := mg.Kernel.Machine.TPM().UnsealSePCR(s2.SePCRHandle, core.ID, blob)
	if err != nil {
		t.Fatalf("same PAL could not unseal across sessions: %v", err)
	}
	if len(got) != 16 {
		t.Fatalf("unsealed %d bytes", len(got))
	}

	// A different PAL cannot.
	core.Run(0) // finish s2
	mg.SFREE(core, s2)
	otherIm := pal.MustBuild("ldi r0, 1\nsvc 0") // different code
	s3, _ := mg.NewSECB(otherIm, 0, 0)
	core2 := mg.Kernel.Machine.CPUs[2]
	if err := mg.SLAUNCH(core2, s3); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Kernel.Machine.TPM().UnsealSePCR(s3.SePCRHandle, core2.ID, blob); err == nil {
		t.Fatal("different PAL unsealed the blob")
	}
}
