package sksm

import (
	"errors"
	"fmt"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/obs/prof"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// Manager is the recommended-hardware extension: its methods are the
// microcode of the proposed SLAUNCH/SYIELD/SFREE/SKILL instructions plus
// the OS-side driver that sequences them.
type Manager struct {
	Kernel *osker.Kernel
	// Trace, when set, records a dual-timestamp span per instruction
	// (SLAUNCH, suspend, SFREE, SKILL, per-slice) with the machine's TPM
	// command spans nested underneath. Nil disables tracing.
	Trace *obs.Scope
	// Prof, when set, collects exact virtual-cycle attribution for every
	// PAL this manager launches: the profiler is installed on the core at
	// SLAUNCH and removed with the rest of the execution context at
	// suspend/SFREE. Nil disables profiling at zero cost beyond the CPU's
	// per-instruction nil check.
	Prof *prof.CPUProfiler
	// Flight, when set, records a crash bundle when a PAL faults and when
	// a suspended PAL is SKILLed without one (violation kills). Nil
	// disables the flight recorder.
	Flight *prof.FlightRecorder
	// Job is the identity of the job currently executing on this machine,
	// stamped into crash bundles. The multi-tenant service maintains it
	// under the same lock that serializes the machine.
	Job prof.JobInfo
	// Chaos, when set, injects scheduler-level faults (internal/chaos):
	// per-slice quantum collapse (slice-expiry storms) and spurious PAL
	// faults after a slice. Nil costs one pointer check per slice.
	Chaos ChaosHook
	// Audit, when set, records trust-relevant lifecycle events (launch,
	// fault, SKILL, SFREE, and — via the TPM hook — every sePCR and
	// sealing-storage transition) into the machine's tamper-evident log,
	// stamped with the Job identity. Nil costs one pointer check per event.
	// Installing it as the TPM's audit hook (tpm.SetAuditHook) is the
	// embedder's job; palsvc.New does both together.
	Audit *audit.Recorder
}

// TPMAuditEvent implements tpm.AuditHook: the chip reports the bare state
// transition, the manager stamps the identity of the PAL it is currently
// running. Called under the machine lock, like every TPM command.
func (mg *Manager) TPMAuditEvent(op string, handle int, value tpm.Digest) {
	if mg.Audit == nil {
		return
	}
	mg.Audit.Record(audit.Event{
		Type:   op,
		Handle: handle,
		Value:  audit.Digest20(value),
		Tenant: mg.Job.Tenant,
		Trace:  mg.Job.Trace,
	})
}

// auditEvent records one manager-level lifecycle event with Job identity.
func (mg *Manager) auditEvent(typ string, handle int, detail string, image tpm.Digest) {
	if mg.Audit == nil {
		return
	}
	mg.Audit.Record(audit.Event{
		Type:   typ,
		Handle: handle,
		Detail: detail,
		Image:  audit.Digest20(image),
		Tenant: mg.Job.Tenant,
		Trace:  mg.Job.Trace,
	})
}

// ChaosHook injects scheduler-level faults into RunSlice. SliceQuantum may
// shrink the preemption quantum for one slice; SliceFault, consulted after
// a slice that neither halted nor faulted, may declare a spurious fault —
// the manager then follows its real fault path (suspend, flight-record,
// ErrPALFault).
type ChaosHook interface {
	SliceQuantum(q time.Duration) time.Duration
	SliceFault() error
}

// traced wraps one instruction in a span: the ambient context moves to the
// span for its duration so TPM command spans issued by the microcode nest
// under it.
func (mg *Manager) traced(name string, f func() error, attrs ...obs.Attr) error {
	if !mg.Trace.Enabled() {
		return f()
	}
	sp := mg.Trace.Start(name, "sksm")
	for _, a := range attrs {
		sp.Attr(a.Key, a.Val)
	}
	prev := mg.Trace.Swap(sp.Context())
	err := f()
	mg.Trace.Swap(prev)
	if err != nil {
		sp.Attr("error", err.Error())
	}
	mg.Trace.End(sp)
	return err
}

// NewManager enables the recommendations on a machine. The machine's TPM
// must provision sePCRs (platform.Recommended does this).
func NewManager(k *osker.Kernel) (*Manager, error) {
	if !k.Machine.Chipset.HasTPM() {
		return nil, errors.New("sksm: recommended hardware requires a TPM")
	}
	if k.Machine.TPM().NumSePCRs() == 0 {
		return nil, errors.New("sksm: TPM has no sePCRs; build the platform with platform.Recommended")
	}
	return &Manager{Kernel: k}, nil
}

// FreeSePCRs reports how many sePCRs are currently in the Free state — the
// platform's live admission capacity for additional concurrent PALs
// (§5.6). The scan models the chipset reading bank state rather than a TPM
// command, so it advances no simulated time. Callers multiplexing one
// machine across goroutines must hold whatever lock serializes the machine
// (the simulator is single-threaded by design; see internal/sim).
func (mg *Manager) FreeSePCRs() int {
	t := mg.Kernel.Machine.TPM()
	free := 0
	for h := 0; h < t.NumSePCRs(); h++ {
		if st, err := t.SePCRStateOf(h); err == nil && st == tpm.SePCRFree {
			free++
		}
	}
	return free
}

// Errors of the instruction set.
var (
	ErrBadState = errors.New("sksm: SECB in wrong state")
	// ErrLaunchFailed is the SLAUNCH failure code: page conflict or
	// sePCR exhaustion (§5.6).
	ErrLaunchFailed = errors.New("sksm: SLAUNCH failed")
	ErrPALFault     = errors.New("sksm: PAL faulted")
)

// NewSECB is the OS resource-allocation step of Figure 6's Start state:
// allocate one control page plus pages for the image plus extraDataPages —
// SECB and PAL contiguous, per §5.1 — copy the image in, and configure the
// preemption timer.
func (mg *Manager) NewSECB(image pal.Image, extraDataPages int, quantum time.Duration) (*SECB, error) {
	imagePages := (len(image.Bytes) + mem.PageSize - 1) / mem.PageSize
	full, err := mg.Kernel.Alloc.Alloc(1 + imagePages + extraDataPages)
	if err != nil {
		return nil, err
	}
	secbRegion := mem.Region{Base: full.Base, Size: mem.PageSize}
	palRegion := mem.Region{Base: full.Base + mem.PageSize, Size: full.Size - mem.PageSize}
	if err := mg.Kernel.Machine.Chipset.Memory().WriteRaw(palRegion.Base, image.Bytes); err != nil {
		mg.Kernel.Alloc.Free(full)
		return nil, err
	}
	return &SECB{
		Image:        image,
		Region:       palRegion,
		SECBRegion:   secbRegion,
		Entry:        image.Entry,
		SePCRHandle:  -1,
		PreemptTimer: quantum,
		OwnerCPU:     -1,
		State:        StateStart,
	}, nil
}

// SLAUNCH implements the proposed instruction (Figure 7): from Start it
// protects, measures and begins executing the PAL; from Suspend it
// re-protects the pages and resumes the saved state at world-switch cost.
// On failure the memory protections are rolled back and the error wraps
// ErrLaunchFailed.
func (mg *Manager) SLAUNCH(c *cpu.CPU, s *SECB) error {
	if !mg.Trace.Enabled() {
		return mg.slaunch(c, s, nil)
	}
	// Open the span by hand (rather than via traced) so the launch path
	// can annotate it with the measurement-cache outcome.
	sp := mg.Trace.Start("SLAUNCH", "sksm")
	sp.AttrInt("cpu", c.ID)
	sp.Attr("from", s.State.String())
	prev := mg.Trace.Swap(sp.Context())
	err := mg.slaunch(c, s, sp)
	mg.Trace.Swap(prev)
	if err != nil {
		sp.Attr("error", err.Error())
	}
	mg.Trace.End(sp)
	return err
}

func (mg *Manager) slaunch(c *cpu.CPU, s *SECB, sp *obs.Span) error {
	m := mg.Kernel.Machine
	switch s.State {
	case StateStart:
		// Protect: the memory controller claims the pages — SECB and
		// PAL both — for this CPU ("for the memory region defined in
		// the SECB and for the SECB itself", §5.1).
		s.State = StateProtect
		if err := m.Chipset.ProtectRegion(s.fullRegion(), c.ID); err != nil {
			s.State = StateStart
			return fmt.Errorf("%w: %w", ErrLaunchFailed, err)
		}
		// Measure: take the hardware TPM lock (§5.4.5 — with PALs on
		// multiple CPUs, TPM access is arbitrated in hardware, not by
		// untrusted software locks), allocate a sePCR, and stream the
		// PAL to the TPM once.
		s.State = StateMeasure
		// The SHA-1 over the image is memoized by slice identity: the
		// multi-tenant service relaunches the same cached image
		// constantly. The LPC streaming below still charges the full
		// virtual transfer latency either way; only simulator CPU time
		// is saved. The outcome is trace-visible so tcbtrace timelines
		// distinguish cached launches.
		meas, hit := tpm.MeasureMemoized(s.Image.Bytes)
		s.Measurement = meas
		if hit {
			sp.Attr("measure_cache", "hit")
		} else {
			sp.Attr("measure_cache", "miss")
		}
		bus := m.Chipset.Bus()
		if err := bus.Acquire(c.ID); err != nil {
			m.Chipset.ReleaseRegion(s.fullRegion(), c.ID)
			s.State = StateStart
			return fmt.Errorf("%w: %w", ErrLaunchFailed, err)
		}
		handle, err := m.TPM().AllocateSePCR(c.ID, s.Measurement)
		if err != nil {
			bus.Release(c.ID)
			m.Chipset.ReleaseRegion(s.fullRegion(), c.ID)
			s.State = StateStart
			return fmt.Errorf("%w: %w", ErrLaunchFailed, err)
		}
		s.SePCRHandle = handle
		bus.TransferHash(s.Image.Bytes)
		bus.Release(c.ID)
		s.MeasuredFlag = true

		// Execute: reinitialize the core to its trusted state and enter.
		c.Reset()
		m.Clock.Advance(c.Params.InitCost)
		c.EnterRegion(s.Region, s.Entry)
		c.SetService(mg.serviceFor(s))
		if mg.Prof != nil {
			mg.Prof.Enter(s.Measurement, s.Image, s.Region.Size, false)
			c.SetProfiler(mg.Prof)
		}
		s.OwnerCPU = c.ID
		s.State = StateExecute
		mg.auditEvent(audit.EventSLaunch, s.SePCRHandle, "", s.Measurement)
		return nil

	case StateSuspend:
		// Resume: the MeasuredFlag is honored because the pages are in
		// NONE (§5.3.1); re-protect for this CPU and reload state.
		if !s.MeasuredFlag {
			return fmt.Errorf("%w: resume of unmeasured SECB", ErrLaunchFailed)
		}
		s.State = StateProtect
		if err := m.Chipset.ProtectRegion(s.fullRegion(), c.ID); err != nil {
			s.State = StateSuspend
			return fmt.Errorf("%w: %w", ErrLaunchFailed, err)
		}
		// The saved state is read back from the protected SECB page —
		// the hardware's copy, which the OS could not have touched
		// while the pages were NONE. There is deliberately no fallback
		// to the software-visible SECB struct: honoring one would let a
		// forged control block resume a victim PAL with attacker-chosen
		// registers and program counter.
		if s.SECBRegion.Size == 0 {
			m.Chipset.SecludeRegion(s.fullRegion(), c.ID)
			s.State = StateSuspend
			return fmt.Errorf("%w: SECB has no protected control page", ErrLaunchFailed)
		}
		saved, savedHandle, err := readArchState(m.Chipset.Memory(), s.SECBRegion.Base)
		if err != nil {
			m.Chipset.SecludeRegion(s.fullRegion(), c.ID)
			s.State = StateSuspend
			return fmt.Errorf("%w: %w", ErrLaunchFailed, err)
		}
		if err := m.TPM().RebindSePCR(savedHandle, s.OwnerCPU, c.ID); err != nil {
			m.Chipset.SecludeRegion(s.fullRegion(), c.ID)
			s.State = StateSuspend
			return fmt.Errorf("%w: %w", ErrLaunchFailed, err)
		}
		s.SePCRHandle = savedHandle
		c.Reset()
		c.EnterRegion(s.Region, s.Entry)
		c.LoadState(saved)
		c.SetService(mg.serviceFor(s))
		if mg.Prof != nil {
			mg.Prof.Enter(s.Measurement, s.Image, s.Region.Size, true)
			c.SetProfiler(mg.Prof)
		}
		c.VMEnter() // the hardware context-switch cost (§5.3.2, Table 2)
		s.OwnerCPU = c.ID
		s.State = StateExecute
		s.Resumes++
		return nil

	default:
		return fmt.Errorf("%w: SLAUNCH from %v", ErrBadState, s.State)
	}
}

// Suspend implements the preemption-timer expiry / SYIELD path (§5.3):
// architectural state is written to the SECB, microarchitectural state is
// cleared, and the pages transition to NONE.
func (mg *Manager) Suspend(c *cpu.CPU, s *SECB) error {
	if !mg.Trace.Enabled() {
		return mg.suspend(c, s)
	}
	return mg.traced("Suspend", func() error { return mg.suspend(c, s) },
		obs.Int("cpu", c.ID))
}

func (mg *Manager) suspend(c *cpu.CPU, s *SECB) error {
	if s.State != StateExecute || s.OwnerCPU != c.ID {
		return fmt.Errorf("%w: suspend from %v (owner CPU%d, caller CPU%d)",
			ErrBadState, s.State, s.OwnerCPU, c.ID)
	}
	s.CPUState = c.SaveState()
	if s.SECBRegion.Size != 0 {
		// Hardware writes the architectural state into the SECB page;
		// the page is about to become inaccessible to all software.
		if err := writeArchState(mg.Kernel.Machine.Chipset.Memory(),
			s.SECBRegion.Base, s.CPUState, s.SePCRHandle); err != nil {
			return err
		}
	}
	c.ClearMicroarchState() // also uninstalls the profiler hook
	mg.Prof.Leave()
	if err := mg.Kernel.Machine.Chipset.SecludeRegion(s.fullRegion(), c.ID); err != nil {
		return err
	}
	c.VMExit() // world-switch cost back to the untrusted OS
	s.State = StateSuspend
	return nil
}

// SFREE implements clean PAL termination (§5.5): the PAL has erased its
// secrets; pages return to ALL for the OS to reuse, and the sePCR
// transitions to the Quote state so untrusted code can attest the run.
func (mg *Manager) SFREE(c *cpu.CPU, s *SECB) error {
	if !mg.Trace.Enabled() {
		return mg.sfree(c, s)
	}
	return mg.traced("SFREE", func() error { return mg.sfree(c, s) },
		obs.Int("cpu", c.ID))
}

func (mg *Manager) sfree(c *cpu.CPU, s *SECB) error {
	if s.State != StateExecute || s.OwnerCPU != c.ID {
		return fmt.Errorf("%w: SFREE from %v", ErrBadState, s.State)
	}
	m := mg.Kernel.Machine
	if err := m.TPM().ReleaseSePCR(s.SePCRHandle, c.ID); err != nil {
		return err
	}
	c.ClearMicroarchState() // also uninstalls the profiler hook
	mg.Prof.Leave()
	if err := m.Chipset.ReleaseRegion(s.fullRegion(), c.ID); err != nil {
		return err
	}
	s.OwnerCPU = -1
	s.State = StateDone
	mg.auditEvent(audit.EventSFree, s.SePCRHandle, "", s.Measurement)
	return nil
}

// SKILL implements abnormal termination of a suspended, misbehaving PAL
// (§5.5): erase its pages, return them to ALL, extend the kill marker into
// its sePCR and free the register.
func (mg *Manager) SKILL(s *SECB) error {
	if !mg.Trace.Enabled() {
		return mg.skill(s)
	}
	return mg.traced("SKILL", func() error { return mg.skill(s) },
		obs.Int("sepcr", s.SePCRHandle))
}

func (mg *Manager) skill(s *SECB) error {
	if s.State != StateSuspend {
		return fmt.Errorf("%w: SKILL from %v (only suspended PALs can be killed)", ErrBadState, s.State)
	}
	// A SKILL of a PAL that never crashed is the OS declaring it
	// misbehaving (violation path). Capture the bundle now: the next
	// lines zero the pages and kill the sePCR, destroying the evidence.
	if mg.Flight != nil && s.CrashID == 0 {
		s.CrashID = mg.Flight.Record(mg.crashBundle(s, "skill", nil))
	}
	m := mg.Kernel.Machine
	full := s.fullRegion()
	if err := m.Chipset.Memory().ZeroRange(full.Base, full.Size); err != nil {
		return err
	}
	// Pages are NONE; Release from NONE is the SKILL transition.
	if err := m.Chipset.ReleaseRegion(full, -1); err != nil {
		return err
	}
	if err := m.TPM().KillSePCR(s.SePCRHandle); err != nil {
		return err
	}
	s.State = StateDone
	s.OwnerCPU = -1
	mg.auditEvent(audit.EventSKill, s.SePCRHandle, "", s.Measurement)
	return nil
}

// RunSlice executes one scheduling slice of the PAL on core c: launch or
// resume via SLAUNCH, run until halt/yield/preemption, then suspend or
// free. It returns the stop reason.
func (mg *Manager) RunSlice(c *cpu.CPU, s *SECB) (cpu.StopReason, error) {
	if !mg.Trace.Enabled() {
		return mg.runSlice(c, s)
	}
	sp := mg.Trace.Start("slice", "sksm").
		AttrInt("cpu", c.ID).AttrInt("slice", s.Slices)
	prev := mg.Trace.Swap(sp.Context())
	reason, err := mg.runSlice(c, s)
	mg.Trace.Swap(prev)
	sp.Attr("stop", reason.String())
	if err != nil {
		sp.Attr("error", err.Error())
	}
	mg.Trace.End(sp)
	return reason, err
}

func (mg *Manager) runSlice(c *cpu.CPU, s *SECB) (cpu.StopReason, error) {
	if err := mg.SLAUNCH(c, s); err != nil {
		return cpu.StopFault, err
	}
	s.Slices++
	quantum := s.PreemptTimer
	if mg.Chaos != nil {
		quantum = mg.Chaos.SliceQuantum(quantum)
	}
	reason, err := c.Run(quantum)
	if err == nil && reason != cpu.StopHalt && mg.Chaos != nil {
		// Spurious injected fault: the hardware declares a violation on a
		// PAL that was about to suspend cleanly. It takes the identical
		// path a real fault does below.
		err = mg.Chaos.SliceFault()
	}
	if mg.Prof != nil {
		mg.Prof.NoteSlice(s.Measurement, reason, err != nil)
	}
	switch {
	case err != nil:
		// Faulting PALs are suspended (their state secluded) and left
		// for the OS to SKILL — their secrets never become readable.
		// Both wraps keep the causal error in the chain (%w, not %v):
		// supervisors decide retryability via errors.As on the cause.
		if serr := mg.Suspend(c, s); serr != nil {
			return cpu.StopFault, fmt.Errorf("%w: %w (suspend also failed: %v)", ErrPALFault, err, serr)
		}
		// The suspend above saved the faulting architectural state into
		// the SECB, so the bundle sees the true registers and PC.
		if mg.Flight != nil {
			s.CrashID = mg.Flight.Record(mg.crashBundle(s, "fault", err))
		}
		mg.auditEvent(audit.EventFault, s.SePCRHandle, err.Error(), s.Measurement)
		return cpu.StopFault, fmt.Errorf("%w: %w", ErrPALFault, err)
	case reason == cpu.StopHalt:
		if err := mg.SFREE(c, s); err != nil {
			return reason, err
		}
		return reason, nil
	default: // yield or preempted
		if mg.Trace.Enabled() {
			if reason == cpu.StopPreempted {
				mg.Trace.Event("preempt", "sksm", obs.Int("cpu", c.ID))
			} else {
				mg.Trace.Event("SYIELD", "sksm", obs.Int("cpu", c.ID))
			}
		}
		if err := mg.Suspend(c, s); err != nil {
			return reason, err
		}
		return reason, nil
	}
}

// RunToCompletion drives a PAL through as many slices as needed on core c.
func (mg *Manager) RunToCompletion(c *cpu.CPU, s *SECB) error {
	for s.State != StateDone {
		if _, err := mg.RunSlice(c, s); err != nil {
			return err
		}
	}
	return nil
}

// QuoteAfterExit generates the attestation for a completed PAL from
// untrusted code, using the sePCR handle the PAL reported (§5.4.3). The
// caller releases the SECB's pages to the OS afterwards.
func (mg *Manager) QuoteAfterExit(s *SECB, nonce []byte) (*tpm.Quote, error) {
	if s.State != StateDone {
		return nil, fmt.Errorf("%w: quote of %v SECB", ErrBadState, s.State)
	}
	var q *tpm.Quote
	v0 := mg.Kernel.Machine.Clock.Now()
	err := mg.traced("QuoteAfterExit", func() error {
		var err error
		q, err = mg.Kernel.Machine.TPM().QuoteSePCR(s.SePCRHandle, nonce)
		return err
	}, obs.Int("sepcr", s.SePCRHandle))
	if mg.Prof != nil && err == nil {
		mg.Prof.NoteQuote(s.Measurement, mg.Kernel.Machine.Clock.Now()-v0)
	}
	return q, err
}

// QuoteBatchAfterExit generates one batched attestation covering several
// completed PALs: every SECB's sePCR becomes a Merkle leaf and the AIK
// signs the root once (tpm.QuoteSePCRBatch). All SECBs are validated Done
// before any register is consumed — a rejected or failed batch leaves
// every register attestable on retry. nonces[i] is the per-job verifier
// nonce for secbs[i]; sessionID, when non-zero, names an open quote
// session to MAC the batch under.
func (mg *Manager) QuoteBatchAfterExit(secbs []*SECB, nonces [][]byte, batchNonce []byte, sessionID uint64) (*tpm.BatchQuote, error) {
	if len(secbs) != len(nonces) {
		return nil, fmt.Errorf("sksm: %d SECBs but %d nonces", len(secbs), len(nonces))
	}
	reqs := make([]tpm.BatchRequest, len(secbs))
	for i, s := range secbs {
		if s.State != StateDone {
			return nil, fmt.Errorf("%w: batch quote of %v SECB", ErrBadState, s.State)
		}
		reqs[i] = tpm.BatchRequest{Handle: s.SePCRHandle, Nonce: nonces[i]}
	}
	var q *tpm.BatchQuote
	v0 := mg.Kernel.Machine.Clock.Now()
	err := mg.traced("QuoteBatchAfterExit", func() error {
		var err error
		q, err = mg.Kernel.Machine.TPM().QuoteSePCRBatch(reqs, batchNonce, sessionID)
		return err
	}, obs.Int("batch", len(secbs)))
	if mg.Prof != nil && err == nil {
		// Attribute the amortized cost evenly: the profile sees what one
		// job actually paid, which is the whole point of batching.
		per := (mg.Kernel.Machine.Clock.Now() - v0) / time.Duration(len(secbs))
		for _, s := range secbs {
			mg.Prof.NoteQuote(s.Measurement, per)
		}
	}
	return q, err
}

// Release returns a SECB's pages to the OS allocator. It accepts Done
// SECBs (the normal post-quote path) and Start SECBs whose SLAUNCH never
// succeeded: those pages were allocated by NewSECB but never protected, so
// neither SKILL nor SFREE will ever reclaim them — without this path a
// failed launch leaks its pages permanently. A released SECB transitions
// to Done so it cannot be relaunched over freed memory.
func (mg *Manager) Release(s *SECB) error {
	switch s.State {
	case StateDone:
	case StateStart:
		s.State = StateDone
		s.OwnerCPU = -1
	default:
		return fmt.Errorf("%w: release of %v SECB", ErrBadState, s.State)
	}
	mg.Kernel.ReleaseRegion(s.fullRegion())
	return nil
}
