package sksm

import (
	"fmt"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/tpm"
)

// serviceFor builds the PAL ABI handler for a SECB, wrapped — only when
// the manager profiles — so every service call is attributed to its
// caller site with the virtual time the platform charged inside it. The
// wrapper is chosen once at SLAUNCH, so the unprofiled handler is the
// bare one: profiling off adds no work per call.
func (mg *Manager) serviceFor(s *SECB) cpu.ServiceFunc {
	base := mg.serviceBase(s)
	if mg.Prof == nil {
		return base
	}
	clock := mg.Kernel.Machine.Clock
	p := mg.Prof
	return func(c *cpu.CPU, num uint16) (cpu.SvcAction, error) {
		// The SVC trap already advanced PC past the instruction.
		caller := c.PC - isa.WordSize
		v0 := clock.Now()
		act, err := base(c, num)
		p.SvcCall(num, caller, clock.Now()-v0)
		return act, err
	}
}

// serviceBase builds the bare PAL ABI handler. Where the SEA runtime
// binds sealed storage to the dynamic PCRs, recommended hardware binds it
// to the PAL's sePCR — identity-based, so a PAL unseals its state under
// whatever register a later launch assigns (§5.4.4).
func (mg *Manager) serviceBase(s *SECB) cpu.ServiceFunc {
	m := mg.Kernel.Machine
	return func(c *cpu.CPU, num uint16) (cpu.SvcAction, error) {
		switch num {
		case cpu.SvcNumExit:
			s.ExitStatus = c.Regs[0]
			// By convention the PAL outputs its sePCR handle so
			// untrusted code can quote it (§5.4.1); the manager
			// records it on the SECB, which models the same channel.
			return cpu.SvcExit, nil

		case cpu.SvcNumYield:
			return cpu.SvcYield, nil

		case cpu.SvcNumExtend:
			data, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
			if err != nil {
				return 0, err
			}
			_, err = m.TPM().SePCRExtend(s.SePCRHandle, c.ID, tpm.Measure(data))
			return cpu.SvcContinue, err

		case cpu.SvcNumSeal:
			data, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
			if err != nil {
				return 0, err
			}
			blob, err := m.TPM().SealSePCR(s.SePCRHandle, c.ID, data)
			if err != nil {
				return 0, err
			}
			if err := c.WriteBytes(c.Regs[2], blob); err != nil {
				return 0, err
			}
			c.Regs[0] = uint32(len(blob))
			return cpu.SvcContinue, nil

		case cpu.SvcNumUnseal:
			blob, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
			if err != nil {
				return 0, err
			}
			data, uerr := m.TPM().UnsealSePCR(s.SePCRHandle, c.ID, blob)
			if uerr != nil {
				c.Regs[0] = 0
				c.Regs[1] = 1
				return cpu.SvcContinue, nil
			}
			if err := c.WriteBytes(c.Regs[2], data); err != nil {
				return 0, err
			}
			c.Regs[0] = uint32(len(data))
			c.Regs[1] = 0
			return cpu.SvcContinue, nil

		case cpu.SvcNumRandom:
			b, err := m.TPM().GetRandom(int(c.Regs[1]))
			if err != nil {
				return 0, err
			}
			if err := c.WriteBytes(c.Regs[0], b); err != nil {
				return 0, err
			}
			return cpu.SvcContinue, nil

		case cpu.SvcNumOutput:
			b, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
			if err != nil {
				return 0, err
			}
			s.Output = append(s.Output, b...)
			return cpu.SvcContinue, nil

		case cpu.SvcNumInput:
			n := int(c.Regs[1])
			if n > len(s.Input) {
				n = len(s.Input)
			}
			if err := c.WriteBytes(c.Regs[0], s.Input[:n]); err != nil {
				return 0, err
			}
			c.Regs[0] = uint32(n)
			return cpu.SvcContinue, nil

		case cpu.SvcNumGetTime:
			c.Regs[0] = uint32(m.Clock.Now())
			return cpu.SvcContinue, nil
		}
		return 0, fmt.Errorf("sksm: unknown service %d", num)
	}
}
