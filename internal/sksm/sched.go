package sksm

import (
	"errors"
	"fmt"

	"minimaltcb/internal/cpu"
)

// Scheduler multiprograms PALs on recommended hardware: more PALs than
// cores, round-robin with the SECB preemption timer, resumable on any core
// (§5.3's "the PAL may execute on a different CPU each time it is
// resumed"). The legacy OS keeps core 0; PALs share the remaining cores —
// the execution model of Figure 4.
type Scheduler struct {
	mg *Manager
	// PALCores are the core IDs PALs may use (all but core 0 by default).
	PALCores []int
}

// NewScheduler builds a round-robin PAL scheduler over all cores but 0.
func NewScheduler(mg *Manager) *Scheduler {
	sch := &Scheduler{mg: mg}
	for i := 1; i < len(mg.Kernel.Machine.CPUs); i++ {
		sch.PALCores = append(sch.PALCores, i)
	}
	if len(sch.PALCores) == 0 {
		sch.PALCores = []int{0} // single-core machine: share core 0
	}
	return sch
}

// ErrStalled reports a scheduling round in which no runnable PAL made
// progress (all launches failed), which would otherwise loop forever.
var ErrStalled = errors.New("sksm: scheduler stalled: no PAL made progress")

// RunAll drives every SECB to Done. Faulting PALs are SKILLed and reported
// in the returned map (SECB index -> error); other PALs keep running.
func (sch *Scheduler) RunAll(secbs []*SECB) (map[int]error, error) {
	faults := map[int]error{}
	cores := sch.mg.Kernel.Machine.CPUs
	next := 0
	for {
		remaining := 0
		progressed := false
		for i, s := range secbs {
			if s.State == StateDone {
				continue
			}
			if faults[i] != nil {
				continue
			}
			remaining++
			core := cores[sch.PALCores[next%len(sch.PALCores)]]
			next++
			if _, err := sch.mg.RunSlice(core, s); err != nil {
				if errors.Is(err, ErrPALFault) && s.State == StateSuspend {
					// The OS kills the misbehaving PAL (§5.5).
					if kerr := sch.mg.SKILL(s); kerr != nil {
						return faults, kerr
					}
					faults[i] = err
					progressed = true
					continue
				}
				return faults, fmt.Errorf("sksm: scheduling SECB %d: %w", i, err)
			}
			progressed = true
		}
		if remaining == 0 {
			return faults, nil
		}
		if !progressed {
			return faults, ErrStalled
		}
	}
}

// RunConcurrently interleaves PAL slices with a legacy-work accounting
// callback, modeling Figure 4: PALs occupy their cores' timelines while
// core 0's legacy workload keeps running. legacyTick is invoked once per
// scheduling round with the virtual time the round consumed, letting the
// caller account legacy throughput.
func (sch *Scheduler) RunConcurrently(secbs []*SECB, legacyTick func(elapsed int64)) (map[int]error, error) {
	clock := sch.mg.Kernel.Machine.Clock
	faults := map[int]error{}
	cores := sch.mg.Kernel.Machine.CPUs
	next := 0
	for {
		remaining := 0
		progressed := false
		roundStart := clock.Now()
		for i, s := range secbs {
			if s.State == StateDone || faults[i] != nil {
				continue
			}
			remaining++
			coreID := sch.PALCores[next%len(sch.PALCores)]
			next++
			core := cores[coreID]
			sliceStart := clock.Now()
			_, err := sch.mg.RunSlice(core, s)
			sch.mg.Kernel.OccupyCPU(coreID, clock.Now()-sliceStart)
			if err != nil {
				if errors.Is(err, ErrPALFault) && s.State == StateSuspend {
					if kerr := sch.mg.SKILL(s); kerr != nil {
						return faults, kerr
					}
					faults[i] = err
					progressed = true
					continue
				}
				return faults, err
			}
			progressed = true
		}
		if legacyTick != nil {
			legacyTick(int64(clock.Now() - roundStart))
		}
		if remaining == 0 {
			return faults, nil
		}
		if !progressed {
			return faults, ErrStalled
		}
	}
}

// CPU returns core by ID (helper for tests and experiments).
func (sch *Scheduler) CPU(id int) *cpu.CPU { return sch.mg.Kernel.Machine.CPUs[id] }
