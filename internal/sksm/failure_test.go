package sksm

import (
	"errors"
	"testing"

	"minimaltcb/internal/mem"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
)

// Failure-injection tests: the recommended architecture must fail closed
// under resource exhaustion, contended hardware, and power events.

func TestSLAUNCHFailsWhileTPMBusLocked(t *testing.T) {
	mg := newManager(t, 2)
	// Another CPU holds the hardware TPM lock (§5.4.5).
	bus := mg.Kernel.Machine.Chipset.Bus()
	if err := bus.Acquire(3); err != nil {
		t.Fatal(err)
	}
	s, _ := mg.NewSECB(pal.MustBuild("ldi r0, 0\nsvc 0"), 0, 0)
	err := mg.SLAUNCH(mg.Kernel.Machine.CPUs[1], s)
	if !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("launch with locked TPM: %v", err)
	}
	// Fail-closed: pages rolled back to ALL, no sePCR consumed.
	st, _ := mg.Kernel.Machine.Chipset.RegionState(s.Region)
	if st != mem.AccessAll {
		t.Fatalf("region leaked in state %v", st)
	}
	if _, err := mg.Kernel.Machine.TPM().AllocateSePCR(0, [20]byte{}); err != nil {
		t.Fatalf("sePCR leaked by failed launch: %v", err)
	}
	// Lock released by the holder: launch proceeds on the remaining
	// register.
	bus.Release(3)
	if err := mg.SLAUNCH(mg.Kernel.Machine.CPUs[1], s); err != nil {
		t.Fatalf("launch after lock release: %v", err)
	}
}

func TestSLAUNCHReleasesBusLockAfterMeasure(t *testing.T) {
	mg := newManager(t, 1)
	s, _ := mg.NewSECB(pal.MustBuild("ldi r0, 0\nsvc 0"), 0, 0)
	core := mg.Kernel.Machine.CPUs[1]
	if err := mg.SLAUNCH(core, s); err != nil {
		t.Fatal(err)
	}
	if holder := mg.Kernel.Machine.Chipset.Bus().Holder(); holder != -1 {
		t.Fatalf("TPM lock still held by CPU%d after SLAUNCH", holder)
	}
}

func TestTPMRebootInvalidatesSuspendedPALSeals(t *testing.T) {
	// A PAL seals data under its sePCR; the machine power-cycles (TPM
	// boot); the sePCR bank resets, so the old handle is dead and the
	// blob only unseals after a fresh launch of the same PAL.
	mg := newManager(t, 2)
	s, core := func() (*SECB, int) {
		im := pal.MustBuild("svc 1\nldi r0, 0\nsvc 0")
		s, _ := mg.NewSECB(im, 0, 0)
		mg.RunSlice(mg.Kernel.Machine.CPUs[1], s)
		return s, 1
	}()
	chip := mg.Kernel.Machine.TPM()
	blob, err := func() ([]byte, error) {
		// Seal while suspended via the TPM directly (owner binding is
		// on the sePCR, still held by CPU1 for the suspended PAL).
		return chip.SealSePCR(s.SePCRHandle, core, []byte("survives?"))
	}()
	if err != nil {
		t.Fatal(err)
	}
	chip.Boot() // power event
	if _, err := chip.UnsealSePCR(s.SePCRHandle, core, blob); err == nil {
		t.Fatal("stale handle worked after reboot")
	}
	// Fresh launch of the same PAL code on a new platform lifetime:
	// identity-bound release still works.
	meas := s.Measurement
	h, err := chip.AllocateSePCR(2, meas)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chip.UnsealSePCR(h, 2, blob)
	if err != nil || string(got) != "survives?" {
		t.Fatalf("post-reboot unseal by same identity: %q, %v", got, err)
	}
}

func TestLaunchFailsWhenMemoryExhausted(t *testing.T) {
	p := platform.Recommended(platform.HPdc5750(), 2)
	p.KeyBits = 1024
	p.MemorySize = (osker.ReservedPages + 3) * mem.PageSize // 3 usable pages: SECB + image + data
	m, err := platform.New(p)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewManager(osker.NewKernel(m))
	if err != nil {
		t.Fatal(err)
	}
	im := pal.MustBuild("ldi r0, 0\nsvc 0")
	// First SECB takes both pages (1 image + 1 data).
	if _, err := mg.NewSECB(im, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Second allocation must fail cleanly at the OS layer.
	if _, err := mg.NewSECB(im, 1, 0); !errors.Is(err, osker.ErrNoMemory) {
		t.Fatalf("OOM SECB allocation: %v", err)
	}
}

func TestSchedulerSurvivesMixedFailures(t *testing.T) {
	mg := newManager(t, 4)
	sch := NewScheduler(mg)
	good, _ := mg.NewSECB(buildCounter(t), 0, 0)
	// crash1 runs off the end of its region after a yield; crash2 hits a
	// division fault after a yield.
	crash1, _ := mg.NewSECB(pal.MustBuild(`
		svc 1
		ldi r0, 0xfff0
		jmpr r0
	`), 0, 0)
	crash2, _ := mg.NewSECB(pal.MustBuild(`
		svc 1
		ldi r0, 1
		ldi r1, 0
		remu r0, r1
	`), 0, 0)
	faults, err := sch.RunAll([]*SECB{good, crash1, crash2})
	if err != nil {
		t.Fatal(err)
	}
	if good.State != StateDone || good.ExitStatus != 0 {
		t.Fatal("healthy PAL harmed by neighbours' crashes")
	}
	if len(faults) == 0 {
		t.Fatal("no faults recorded for crashing PALs")
	}
	// Every SECB reached Done (SKILLed or completed): no leaked pages.
	for i, s := range []*SECB{good, crash1, crash2} {
		if s.State != StateDone {
			t.Fatalf("SECB %d state %v", i, s.State)
		}
		st, err := mg.Kernel.Machine.Chipset.RegionState(s.Region)
		if err != nil || st != mem.AccessAll {
			t.Fatalf("SECB %d region %v %v", i, st, err)
		}
	}
}
