package sksm

import (
	"errors"
	"testing"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

func TestServiceUnknownFaults(t *testing.T) {
	mg := newManager(t, 1)
	s, _ := mg.NewSECB(pal.MustBuild("svc 77"), 0, 0)
	_, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s)
	if !errors.Is(err, ErrPALFault) {
		t.Fatalf("unknown svc: %v", err)
	}
}

func TestServiceExtendGoesToSePCR(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
		ldi	r0, data
		ldi	r1, 5
		svc	2
		ldi	r0, 0
		svc	0
	data:	.ascii "input"
	`)
	s, _ := mg.NewSECB(im, 0, 0)
	core := mg.Kernel.Machine.CPUs[1]
	if err := mg.SLAUNCH(core, s); err != nil {
		t.Fatal(err)
	}
	before, _ := mg.Kernel.Machine.TPM().SePCRValue(s.SePCRHandle)
	if reason, err := core.Run(0); err != nil || reason != cpu.StopHalt {
		t.Fatalf("%v %v", reason, err)
	}
	after, _ := mg.Kernel.Machine.TPM().SePCRValue(s.SePCRHandle)
	want := tpm.ExtendDigest(before, tpm.Measure([]byte("input")))
	if after != want {
		t.Fatal("svc 2 did not extend the PAL's sePCR")
	}
	if err := mg.SFREE(core, s); err != nil {
		t.Fatal(err)
	}
	// The attestation now covers the input, replayable by a verifier.
	q, err := mg.QuoteAfterExit(s, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if q.Composite != want {
		t.Fatal("quote does not cover the extended input")
	}
}

func TestServiceRandomAndTime(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
		ldi	r0, buf
		ldi	r1, 8
		svc	5		; TPM random
		svc	8		; virtual time -> r0
		ldi	r1, tbuf
		store	r0, [r1]
		ldi	r0, buf
		ldi	r1, 12
		svc	6
		ldi	r0, 0
		svc	0
	buf:	.space 8
	tbuf:	.word 0
	stack:	.space 32
	`)
	s, _ := mg.NewSECB(im, 0, 0)
	if err := mg.RunToCompletion(mg.Kernel.Machine.CPUs[1], s); err != nil {
		t.Fatal(err)
	}
	if len(s.Output) != 12 {
		t.Fatalf("output %d bytes", len(s.Output))
	}
	zero := true
	for _, b := range s.Output[:8] {
		if b != 0 {
			zero = false
		}
	}
	if zero {
		t.Fatal("TPM random returned all zeros")
	}
}

func TestServiceInputOutputRoundTrip(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
		ldi	r0, buf
		ldi	r1, 64
		svc	7
		mov	r1, r0
		ldi	r0, buf
		svc	6
		ldi	r0, 0
		svc	0
	buf:	.space 64
	`)
	s, _ := mg.NewSECB(im, 0, 0)
	s.Input = []byte("through the SECB channel")
	if err := mg.RunToCompletion(mg.Kernel.Machine.CPUs[1], s); err != nil {
		t.Fatal(err)
	}
	if string(s.Output) != "through the SECB channel" {
		t.Fatalf("output %q", s.Output)
	}
}

func TestServiceSealBadPointerFaults(t *testing.T) {
	mg := newManager(t, 1)
	im := pal.MustBuild(`
		ldi	r0, 0xff00
		ldi	r1, 32
		ldi	r2, 0
		svc	3
	`)
	s, _ := mg.NewSECB(im, 0, 0)
	_, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s)
	if !errors.Is(err, ErrPALFault) {
		t.Fatalf("bad seal pointer: %v", err)
	}
	// The faulted PAL is suspended; clean it up and confirm no leaks.
	if err := mg.SKILL(s); err != nil {
		t.Fatal(err)
	}
	if err := mg.Release(s); err != nil {
		t.Fatal(err)
	}
}
