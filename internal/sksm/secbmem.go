package sksm

import (
	"encoding/binary"
	"fmt"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/mem"
)

// Serialization of the hardware-written SECB fields into the SECB page.
// Layout (little-endian):
//
//	offset 0   magic "SECB"
//	offset 4   8 × 4 bytes   general-purpose registers
//	offset 36  4 bytes       pc
//	offset 40  1 byte        flags (bit0 Z, bit1 C, bit2 N)
//	offset 41  1 byte        interrupts enabled
//	offset 42  2 bytes       reserved
//	offset 44  8 × 2 bytes   IDT
//	offset 60  4 bytes       sePCR handle
//
// The page lives under the same access-control protection as the PAL, so
// while the PAL is suspended (pages NONE) the untrusted OS cannot read or
// forge the saved state; the resume microcode reads it back from memory,
// not from any software-visible structure.

const secbMagic = "SECB"
const secbBlockSize = 64

// writeArchState is the suspend microcode's store of CPU state into the
// SECB page. It uses raw (hardware) memory access: at this point the page
// may already be secluded from all software.
func writeArchState(m *mem.Memory, base uint32, st cpu.ArchState, sePCR int) error {
	var block [secbBlockSize]byte
	buf := block[:]
	copy(buf[0:4], secbMagic)
	for i := 0; i < isa.NumRegs; i++ {
		binary.LittleEndian.PutUint32(buf[4+4*i:], st.Regs[i])
	}
	binary.LittleEndian.PutUint32(buf[36:], st.PC)
	var flags byte
	if st.FlagZ {
		flags |= 1
	}
	if st.FlagC {
		flags |= 2
	}
	if st.FlagN {
		flags |= 4
	}
	buf[40] = flags
	if st.IntrEnabled {
		buf[41] = 1
	}
	for i := 0; i < cpu.NumIntrVectors; i++ {
		binary.LittleEndian.PutUint16(buf[44+2*i:], st.IDT[i])
	}
	binary.LittleEndian.PutUint32(buf[60:], uint32(int32(sePCR)))
	return m.WriteRaw(base, buf)
}

// readArchState is the resume microcode's load of CPU state from the SECB
// page.
func readArchState(m *mem.Memory, base uint32) (cpu.ArchState, int, error) {
	var block [secbBlockSize]byte
	buf := block[:]
	if err := m.ReadInto(buf, base); err != nil {
		return cpu.ArchState{}, 0, err
	}
	if string(buf[0:4]) != secbMagic {
		return cpu.ArchState{}, 0, fmt.Errorf("sksm: SECB page lacks magic (never suspended?)")
	}
	var st cpu.ArchState
	for i := 0; i < isa.NumRegs; i++ {
		st.Regs[i] = binary.LittleEndian.Uint32(buf[4+4*i:])
	}
	st.PC = binary.LittleEndian.Uint32(buf[36:])
	st.FlagZ = buf[40]&1 != 0
	st.FlagC = buf[40]&2 != 0
	st.FlagN = buf[40]&4 != 0
	st.IntrEnabled = buf[41] != 0
	for i := 0; i < cpu.NumIntrVectors; i++ {
		st.IDT[i] = binary.LittleEndian.Uint16(buf[44+2*i:])
	}
	handle := int(int32(binary.LittleEndian.Uint32(buf[60:])))
	return st, handle, nil
}
