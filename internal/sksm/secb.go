// Package sksm implements the paper's §5 hardware recommendations — the
// Secure Kernel / Secure Machine extensions that never shipped in silicon:
//
//   - SECB, the Secure Execution Control Block holding a PAL's resources
//     and saved state (§5.1, Figure 5(a));
//   - SLAUNCH, which protects, measures (once), and runs or resumes a PAL
//     (§5.1, §5.6, Figure 7);
//   - the hardware context switch: preemption timer and SYIELD save state
//     to the SECB and seclude the PAL's pages instead of sealing state
//     through the TPM (§5.3);
//   - SFREE and SKILL termination (§5.5);
//   - sePCR binding for measurement, sealed storage and attestation of
//     concurrent PALs (§5.4).
//
// The package composes the primitives of internal/cpu, internal/chipset and
// internal/tpm; the latency win over internal/sea — six orders of magnitude
// on context switches (§5.7) — is the paper's headline result.
package sksm

import (
	"fmt"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// State is a PAL's position in the life cycle of Figure 6.
type State int

// Life-cycle states (Figure 6).
const (
	StateStart State = iota
	StateProtect
	StateMeasure
	StateExecute
	StateSuspend
	StateDone
)

// String names the state as in Figure 6.
func (s State) String() string {
	switch s {
	case StateStart:
		return "Start"
	case StateProtect:
		return "Protect"
	case StateMeasure:
		return "Measure"
	case StateExecute:
		return "Execute"
	case StateSuspend:
		return "Suspend"
	case StateDone:
		return "Done"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// SECB is the Secure Execution Control Block (Figure 5(a)). The untrusted
// OS allocates it and the PAL's memory; the hardware (this package's
// Manager) is the only writer of the protected fields once SLAUNCH runs.
//
// Per §5.1 the SECB and the PAL are contiguous in memory and both are
// covered by the access-control table: the block occupies the page
// directly below the PAL's region (SECBRegion), and the suspended CPU
// state is serialized into that page by the context-switch microcode —
// the Go-side CPUState field is only the working copy.
type SECB struct {
	// Image is the PAL binary; Region the allocated pages (a superset of
	// the image: data and stack space follow the binary).
	Image  pal.Image
	Region mem.Region
	// SECBRegion is the page holding the hardware-written control block,
	// contiguous with and directly below Region.
	SECBRegion mem.Region
	// Entry is the PAL entry offset within the region.
	Entry uint16

	// MeasuredFlag distinguishes first launch from resume (§5.1); it is
	// honored only from the Suspend state, which prevents the untrusted
	// OS from forging it (§5.3.1).
	MeasuredFlag bool
	// Measurement is SHA1 of the image, set during Measure.
	Measurement tpm.Digest
	// SePCRHandle is the TPM register bound at first launch (§5.4.1).
	SePCRHandle int
	// PreemptTimer is the execution quantum the OS configured; zero
	// means run to completion (§5.3.1).
	PreemptTimer time.Duration

	// CPUState is the saved architectural state while suspended.
	CPUState cpu.ArchState
	// OwnerCPU is the core executing the PAL, or -1.
	OwnerCPU int
	// State tracks the Figure 6 life cycle.
	State State

	// Input and Output are the PAL's I/O channels, served over the SVC
	// ABI by the manager.
	Input  []byte
	Output []byte
	// ExitStatus is r0 at exit.
	ExitStatus uint32

	// JoinedCPUs lists cores joined to the PAL beyond the owner (§6
	// multicore PALs); cleared on suspension.
	JoinedCPUs []int

	// Slices counts executed time slices; Resumes counts hardware
	// context-switch resumes (statistics for the benchmarks).
	Slices, Resumes int

	// CrashID is the flight-recorder bundle recorded for this SECB (0 =
	// none). Set on the fault path so the later SKILL does not record the
	// same incident twice.
	CrashID uint64
}

// fullRegion is the contiguous span the access-control table protects:
// the SECB page followed by the PAL's pages.
func (s *SECB) fullRegion() mem.Region {
	if s.SECBRegion.Size == 0 {
		return s.Region // forged/legacy SECBs without a control page
	}
	return mem.Region{Base: s.SECBRegion.Base, Size: s.SECBRegion.Size + s.Region.Size}
}
