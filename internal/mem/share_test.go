package mem

import (
	"errors"
	"testing"
)

// Tests for the §6 multicore-PAL extension: joined CPUs share access to a
// PAL's pages while it executes, and lose it on suspend/release.

func TestShareGrantsAccess(t *testing.T) {
	m := New(2 * PageSize)
	if err := m.Claim(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCPU(0, 2); !errors.Is(err, ErrDenied) {
		t.Fatal("pre-share access granted")
	}
	if err := m.Share(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCPU(0, 2); err != nil {
		t.Fatalf("joined CPU denied: %v", err)
	}
	// Owner keeps access; third parties stay out.
	if err := m.CheckCPU(0, 1); err != nil {
		t.Fatalf("owner denied: %v", err)
	}
	if err := m.CheckCPU(0, 3); !errors.Is(err, ErrDenied) {
		t.Fatal("unjoined CPU granted")
	}
	if !m.SharedWith(0, 2) || m.SharedWith(0, 3) {
		t.Fatal("SharedWith wrong")
	}
}

func TestShareRequiresOwner(t *testing.T) {
	m := New(PageSize)
	// Unowned page cannot be shared.
	if err := m.Share(0, 1, 2); !errors.Is(err, ErrPageBusy) {
		t.Fatalf("share of ALL page: %v", err)
	}
	m.Claim(0, 1)
	// Only the owner may extend the set.
	if err := m.Share(0, 2, 3); !errors.Is(err, ErrPageBusy) {
		t.Fatalf("share by non-owner: %v", err)
	}
	if err := m.Share(0, 1, 99); err == nil {
		t.Fatal("joiner id 99 accepted")
	}
}

func TestUnshareRevokes(t *testing.T) {
	m := New(PageSize)
	m.Claim(0, 1)
	m.Share(0, 1, 2)
	if err := m.Unshare(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCPU(0, 2); !errors.Is(err, ErrDenied) {
		t.Fatal("access survived unshare")
	}
	if err := m.Unshare(99, 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("unshare out of range: %v", err)
	}
}

func TestSecludeRevokesAllJoins(t *testing.T) {
	m := New(PageSize)
	m.Claim(0, 1)
	m.Share(0, 1, 2)
	m.Share(0, 1, 3)
	if err := m.Seclude(0, 1); err != nil {
		t.Fatal(err)
	}
	// Resume on a different CPU: old joins must not resurface.
	m.Claim(0, 4)
	for _, cpu := range []int{1, 2, 3} {
		if err := m.CheckCPU(0, cpu); !errors.Is(err, ErrDenied) {
			t.Fatalf("stale access for CPU%d after suspend/resume: %v", cpu, err)
		}
	}
}

func TestReleaseClearsShares(t *testing.T) {
	m := New(PageSize)
	m.Claim(0, 1)
	m.Share(0, 1, 2)
	m.Release(0, 1)
	// Page back to ALL; reclaim by someone else must not inherit shares.
	m.Claim(0, 5)
	if m.SharedWith(0, 2) {
		t.Fatal("share mask survived release")
	}
}

func TestDMAStillDeniedOnSharedPages(t *testing.T) {
	m := New(PageSize)
	m.Claim(0, 1)
	m.Share(0, 1, 2)
	if err := m.CheckDMA(0); !errors.Is(err, ErrDenied) {
		t.Fatal("DMA allowed on a shared PAL page")
	}
}
