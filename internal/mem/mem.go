// Package mem models physical memory and the per-page access-control table
// the paper recommends adding to the memory controller (§5.2).
//
// The table holds one entry per physical page. A page is in one of three
// states (Figure 5(b) of the paper):
//
//   - ALL:  accessible to every CPU and to DMA-capable devices (default);
//   - CPU i: accessible only to CPU i (a PAL is executing there);
//   - NONE: accessible to nothing (the owning PAL is suspended).
//
// The package enforces the state machine's legal transitions; illegal ones
// (e.g. a second CPU claiming a page that is not in ALL or NONE) return
// errors that the chipset surfaces as SLAUNCH failure codes, exactly as
// §5.6 prescribes.
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the size of one physical page in bytes.
const PageSize = 4096

// PageState encodes the access-control entry for one page: AccessAll,
// AccessNone, or the ID (>= 0) of the single CPU allowed to touch the page.
type PageState int32

const (
	// AccessAll marks a page accessible by all CPUs and DMA devices.
	AccessAll PageState = -1
	// AccessNone marks a page inaccessible to everything on the platform
	// (state of a suspended PAL's memory).
	AccessNone PageState = -2
)

// String renders the state as in the paper's Figure 5(b).
func (s PageState) String() string {
	switch {
	case s == AccessAll:
		return "ALL"
	case s == AccessNone:
		return "NONE"
	case s >= 0:
		return fmt.Sprintf("CPU%d", int32(s))
	default:
		return fmt.Sprintf("invalid(%d)", int32(s))
	}
}

// ErrPageBusy is returned when a transition requires a page in ALL or NONE
// but it is currently bound to a CPU — the "another PAL is already using
// these memory pages" failure of §5.6.
var ErrPageBusy = errors.New("mem: page owned by another CPU")

// ErrOutOfRange is returned for page or byte addresses beyond physical
// memory.
var ErrOutOfRange = errors.New("mem: address out of range")

// ErrDenied is returned when the access-control table forbids a request.
var ErrDenied = errors.New("mem: access denied by access-control table")

// Memory is flat physical memory plus its access-control table and the
// legacy DEV (Device Exclusion Vector) bit vector used by SKINIT to protect
// the SLB from DMA.
type Memory struct {
	data  []byte
	table []PageState
	dev   []bool // true = page protected from DMA (DEV bit set)
	// shares holds, per page, a bitmask of additional CPUs granted
	// access while the page is CPU-owned — the §6 "multicore PALs"
	// extension, where a join operation "serves to add the new CPU to
	// the memory controller's access control table for the PAL's pages".
	// Meaningful only while table[page] >= 0.
	shares []uint64
}

// New allocates physical memory of the given size, rounded up to a whole
// number of pages, with every page in the ALL state.
func New(size int) *Memory {
	pages := (size + PageSize - 1) / PageSize
	if pages < 1 {
		pages = 1
	}
	m := &Memory{
		data:   make([]byte, pages*PageSize),
		table:  make([]PageState, pages),
		dev:    make([]bool, pages),
		shares: make([]uint64, pages),
	}
	for i := range m.table {
		m.table[i] = AccessAll
	}
	return m
}

// Size returns the physical memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// NumPages returns the number of physical pages.
func (m *Memory) NumPages() int { return len(m.table) }

// PageOf returns the page number containing byte address addr.
func PageOf(addr uint32) int { return int(addr) / PageSize }

// State returns the access-control entry for a page.
func (m *Memory) State(page int) (PageState, error) {
	if page < 0 || page >= len(m.table) {
		return 0, fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	return m.table[page], nil
}

// Claim transitions a page to exclusive ownership by cpu. Permitted from
// ALL (first launch) and NONE (resume); from CPU state only if it is the
// same CPU (idempotent re-claim). This is the transition the memory
// controller performs during SLAUNCH.
func (m *Memory) Claim(page, cpu int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if cpu < 0 {
		return fmt.Errorf("mem: invalid CPU id %d", cpu)
	}
	switch {
	case st == AccessAll, st == AccessNone, st == PageState(cpu):
		m.table[page] = PageState(cpu)
		return nil
	default:
		return fmt.Errorf("%w: page %d is %v, CPU%d cannot claim", ErrPageBusy, page, st, cpu)
	}
}

// Seclude transitions a page from CPU ownership to NONE (PAL suspend). Only
// the owning CPU may seclude. Any joined CPUs lose access: suspension
// revokes the whole set, and a resume re-establishes joins explicitly.
func (m *Memory) Seclude(page, cpu int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if st != PageState(cpu) {
		return fmt.Errorf("%w: page %d is %v, CPU%d cannot seclude", ErrPageBusy, page, st, cpu)
	}
	m.table[page] = AccessNone
	m.shares[page] = 0
	return nil
}

// Release returns a page to the ALL state (SFREE by the owning CPU, or
// SKILL on a suspended PAL whose pages are NONE).
func (m *Memory) Release(page, cpu int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	switch {
	case st == PageState(cpu), st == AccessNone, st == AccessAll:
		m.table[page] = AccessAll
		m.shares[page] = 0
		return nil
	default:
		return fmt.Errorf("%w: page %d is %v, CPU%d cannot release", ErrPageBusy, page, st, cpu)
	}
}

// Share grants joiner access to a CPU-owned page alongside its owner — the
// memory-controller half of the §6 multicore-PAL join operation. Only the
// current owner may extend the set, and only while the page is CPU-owned.
func (m *Memory) Share(page, owner, joiner int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if st != PageState(owner) {
		return fmt.Errorf("%w: page %d is %v, CPU%d cannot share it", ErrPageBusy, page, st, owner)
	}
	if joiner < 0 || joiner >= 64 {
		return fmt.Errorf("mem: invalid joiner CPU id %d", joiner)
	}
	m.shares[page] |= 1 << uint(joiner)
	return nil
}

// Unshare revokes a joiner's access to a CPU-owned page.
func (m *Memory) Unshare(page, joiner int) error {
	if page < 0 || page >= len(m.shares) {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	if joiner >= 0 && joiner < 64 {
		m.shares[page] &^= 1 << uint(joiner)
	}
	return nil
}

// SharedWith reports whether cpu has joined access to the page.
func (m *Memory) SharedWith(page, cpu int) bool {
	if page < 0 || page >= len(m.shares) || cpu < 0 || cpu >= 64 {
		return false
	}
	return m.shares[page]&(1<<uint(cpu)) != 0
}

// CheckCPU reports whether cpu may access the page under the current table.
func (m *Memory) CheckCPU(page, cpu int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if st == AccessAll || st == PageState(cpu) {
		return nil
	}
	if st >= 0 && m.SharedWith(page, cpu) {
		return nil
	}
	return fmt.Errorf("%w: CPU%d -> page %d (%v)", ErrDenied, cpu, page, st)
}

// CheckDMA reports whether a DMA-capable device may access the page: the
// page must be in ALL state and its DEV bit must be clear.
func (m *Memory) CheckDMA(page int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if st != AccessAll {
		return fmt.Errorf("%w: DMA -> page %d (%v)", ErrDenied, page, st)
	}
	if m.dev[page] {
		return fmt.Errorf("%w: DMA -> page %d (DEV bit set)", ErrDenied, page)
	}
	return nil
}

// SetDEV sets or clears the DEV bit for a page. SKINIT sets the bits for
// the SLB's pages before measurement begins.
func (m *Memory) SetDEV(page int, protected bool) error {
	if page < 0 || page >= len(m.dev) {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	m.dev[page] = protected
	return nil
}

// DEV reports the DEV bit for a page.
func (m *Memory) DEV(page int) (bool, error) {
	if page < 0 || page >= len(m.dev) {
		return false, fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	return m.dev[page], nil
}

// checkRange validates [addr, addr+n).
func (m *Memory) checkRange(addr uint32, n int) error {
	if n < 0 || int(addr) > len(m.data) || int(addr)+n > len(m.data) {
		return fmt.Errorf("%w: [%d, %d)", ErrOutOfRange, addr, int(addr)+n)
	}
	return nil
}

// ReadRaw copies n bytes at addr without access checks. Hardware microcode
// (SKINIT streaming the SLB to the TPM) and test fixtures use it; software
// paths must go through the chipset, which checks the table.
func (m *Memory) ReadRaw(addr uint32, n int) ([]byte, error) {
	if err := m.checkRange(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out, nil
}

// WriteRaw copies b into memory at addr without access checks.
func (m *Memory) WriteRaw(addr uint32, b []byte) error {
	if err := m.checkRange(addr, len(b)); err != nil {
		return err
	}
	copy(m.data[addr:], b)
	return nil
}

// ZeroRange zeroes [addr, addr+n) without access checks; SKILL microcode
// uses it to erase a killed PAL's pages.
func (m *Memory) ZeroRange(addr uint32, n int) error {
	if err := m.checkRange(addr, n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		m.data[int(addr)+i] = 0
	}
	return nil
}

// Region describes a contiguous range of physical memory, page-aligned by
// construction when created with RegionForPages.
type Region struct {
	Base uint32 // starting physical address
	Size int    // length in bytes
}

// RegionForPages returns the region covering pages [first, first+count).
func RegionForPages(first, count int) Region {
	return Region{Base: uint32(first * PageSize), Size: count * PageSize}
}

// Pages returns the list of page numbers the region touches.
func (r Region) Pages() []int {
	if r.Size <= 0 {
		return nil
	}
	first := PageOf(r.Base)
	last := PageOf(r.Base + uint32(r.Size) - 1)
	out := make([]int, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, p)
	}
	return out
}

// Contains reports whether addr lies inside the region.
func (r Region) Contains(addr uint32) bool {
	return addr >= r.Base && addr < r.Base+uint32(r.Size)
}

// End returns the first address past the region.
func (r Region) End() uint32 { return r.Base + uint32(r.Size) }
