// Package mem models physical memory and the per-page access-control table
// the paper recommends adding to the memory controller (§5.2).
//
// The table holds one entry per physical page. A page is in one of three
// states (Figure 5(b) of the paper):
//
//   - ALL:  accessible to every CPU and to DMA-capable devices (default);
//   - CPU i: accessible only to CPU i (a PAL is executing there);
//   - NONE: accessible to nothing (the owning PAL is suspended).
//
// The package enforces the state machine's legal transitions; illegal ones
// (e.g. a second CPU claiming a page that is not in ALL or NONE) return
// errors that the chipset surfaces as SLAUNCH failure codes, exactly as
// §5.6 prescribes.
//
// Physical memory is backed sparsely: the byte array is split into 64 KB
// chunks that materialize on first write, and reads of untouched chunks are
// served from a shared all-zero chunk. A simulated machine therefore costs
// a few hundred KB of page metadata rather than its full physical memory
// size, which is what makes fresh-machine-per-trial experiment sweeps cheap
// (see docs/PERFORMANCE.md).
//
// Every page additionally carries a version counter, bumped on any write,
// zeroing, or access-control transition touching the page. The CPU's
// decoded-instruction cache keys on it: a matching version proves both that
// the bytes under a cached instruction are unchanged and that the access
// check performed when the entry was filled is still valid.
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the size of one physical page in bytes.
const PageSize = 4096

// chunkShift selects the sparse-backing granularity: 64 KB chunks, the
// architectural SLB limit, so a whole PAL image usually lands in one or two
// chunks.
const chunkShift = 16

// ChunkSize is the sparse-backing chunk size in bytes.
const ChunkSize = 1 << chunkShift

// zeroChunk backs reads of never-written chunks. Read-only by contract:
// View may hand out subslices of it.
var zeroChunk [ChunkSize]byte

// PageState encodes the access-control entry for one page: AccessAll,
// AccessNone, or the ID (>= 0) of the single CPU allowed to touch the page.
type PageState int32

const (
	// AccessAll marks a page accessible by all CPUs and DMA devices.
	AccessAll PageState = -1
	// AccessNone marks a page inaccessible to everything on the platform
	// (state of a suspended PAL's memory).
	AccessNone PageState = -2
)

// String renders the state as in the paper's Figure 5(b).
func (s PageState) String() string {
	switch {
	case s == AccessAll:
		return "ALL"
	case s == AccessNone:
		return "NONE"
	case s >= 0:
		return fmt.Sprintf("CPU%d", int32(s))
	default:
		return fmt.Sprintf("invalid(%d)", int32(s))
	}
}

// ErrPageBusy is returned when a transition requires a page in ALL or NONE
// but it is currently bound to a CPU — the "another PAL is already using
// these memory pages" failure of §5.6.
var ErrPageBusy = errors.New("mem: page owned by another CPU")

// ErrOutOfRange is returned for page or byte addresses beyond physical
// memory.
var ErrOutOfRange = errors.New("mem: address out of range")

// ErrDenied is returned when the access-control table forbids a request.
var ErrDenied = errors.New("mem: access denied by access-control table")

// pageMeta is the per-page control state, packed into one table so a
// machine costs a single allocation for all page bookkeeping.
type pageMeta struct {
	// state is the access-control entry (Figure 5(b)).
	state PageState
	// ver counts content and access-control changes to the page; the
	// CPU decode cache validates entries against it.
	ver uint32
	// shares is a bitmask of additional CPUs granted access while the
	// page is CPU-owned — the §6 "multicore PALs" extension. Meaningful
	// only while state >= 0.
	shares uint64
	// dev is the legacy DEV (Device Exclusion Vector) bit: true = page
	// protected from DMA.
	dev bool
}

// Memory is flat physical memory plus its access-control table and the
// legacy DEV bit vector used by SKINIT to protect the SLB from DMA.
type Memory struct {
	size   int
	chunks [][]byte // nil entry = chunk never written (all zeros)
	pages  []pageMeta
}

// New allocates physical memory of the given size, rounded up to a whole
// number of pages, with every page in the ALL state. Backing chunks
// materialize on first write.
func New(size int) *Memory {
	pages := (size + PageSize - 1) / PageSize
	if pages < 1 {
		pages = 1
	}
	size = pages * PageSize
	m := &Memory{
		size:   size,
		chunks: make([][]byte, (size+ChunkSize-1)/ChunkSize),
		pages:  make([]pageMeta, pages),
	}
	for i := range m.pages {
		m.pages[i].state = AccessAll
	}
	return m
}

// Size returns the physical memory size in bytes.
func (m *Memory) Size() int { return m.size }

// NumPages returns the number of physical pages.
func (m *Memory) NumPages() int { return len(m.pages) }

// PageOf returns the page number containing byte address addr.
func PageOf(addr uint32) int { return int(addr) / PageSize }

// State returns the access-control entry for a page.
func (m *Memory) State(page int) (PageState, error) {
	if page < 0 || page >= len(m.pages) {
		return 0, fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	return m.pages[page].state, nil
}

// PageVersion returns the page's version counter: it changes whenever the
// page's content or access-control state may have changed. Out-of-range
// pages report 0.
func (m *Memory) PageVersion(page int) uint32 {
	if page < 0 || page >= len(m.pages) {
		return 0
	}
	return m.pages[page].ver
}

// bumpRange advances the version of every page overlapping [addr, addr+n).
func (m *Memory) bumpRange(addr uint32, n int) {
	if n <= 0 {
		return
	}
	first := int(addr) / PageSize
	last := (int(addr) + n - 1) / PageSize
	for p := first; p <= last; p++ {
		m.pages[p].ver++
	}
}

// Claim transitions a page to exclusive ownership by cpu. Permitted from
// ALL (first launch) and NONE (resume); from CPU state only if it is the
// same CPU (idempotent re-claim). This is the transition the memory
// controller performs during SLAUNCH.
func (m *Memory) Claim(page, cpu int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if cpu < 0 {
		return fmt.Errorf("mem: invalid CPU id %d", cpu)
	}
	switch {
	case st == AccessAll, st == AccessNone, st == PageState(cpu):
		m.pages[page].state = PageState(cpu)
		m.pages[page].ver++
		return nil
	default:
		return fmt.Errorf("%w: page %d is %v, CPU%d cannot claim", ErrPageBusy, page, st, cpu)
	}
}

// Seclude transitions a page from CPU ownership to NONE (PAL suspend). Only
// the owning CPU may seclude. Any joined CPUs lose access: suspension
// revokes the whole set, and a resume re-establishes joins explicitly.
func (m *Memory) Seclude(page, cpu int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if st != PageState(cpu) {
		return fmt.Errorf("%w: page %d is %v, CPU%d cannot seclude", ErrPageBusy, page, st, cpu)
	}
	m.pages[page].state = AccessNone
	m.pages[page].shares = 0
	m.pages[page].ver++
	return nil
}

// Release returns a page to the ALL state (SFREE by the owning CPU, or
// SKILL on a suspended PAL whose pages are NONE).
func (m *Memory) Release(page, cpu int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	switch {
	case st == PageState(cpu), st == AccessNone, st == AccessAll:
		m.pages[page].state = AccessAll
		m.pages[page].shares = 0
		m.pages[page].ver++
		return nil
	default:
		return fmt.Errorf("%w: page %d is %v, CPU%d cannot release", ErrPageBusy, page, st, cpu)
	}
}

// Share grants joiner access to a CPU-owned page alongside its owner — the
// memory-controller half of the §6 multicore-PAL join operation. Only the
// current owner may extend the set, and only while the page is CPU-owned.
func (m *Memory) Share(page, owner, joiner int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if st != PageState(owner) {
		return fmt.Errorf("%w: page %d is %v, CPU%d cannot share it", ErrPageBusy, page, st, owner)
	}
	if joiner < 0 || joiner >= 64 {
		return fmt.Errorf("mem: invalid joiner CPU id %d", joiner)
	}
	m.pages[page].shares |= 1 << uint(joiner)
	m.pages[page].ver++
	return nil
}

// Unshare revokes a joiner's access to a CPU-owned page.
func (m *Memory) Unshare(page, joiner int) error {
	if page < 0 || page >= len(m.pages) {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	if joiner >= 0 && joiner < 64 {
		m.pages[page].shares &^= 1 << uint(joiner)
		m.pages[page].ver++
	}
	return nil
}

// SharedWith reports whether cpu has joined access to the page.
func (m *Memory) SharedWith(page, cpu int) bool {
	if page < 0 || page >= len(m.pages) || cpu < 0 || cpu >= 64 {
		return false
	}
	return m.pages[page].shares&(1<<uint(cpu)) != 0
}

// CheckCPU reports whether cpu may access the page under the current table.
func (m *Memory) CheckCPU(page, cpu int) error {
	if page < 0 || page >= len(m.pages) {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	st := m.pages[page].state
	if st == AccessAll || st == PageState(cpu) {
		return nil
	}
	if st >= 0 && m.SharedWith(page, cpu) {
		return nil
	}
	return fmt.Errorf("%w: CPU%d -> page %d (%v)", ErrDenied, cpu, page, st)
}

// CheckDMA reports whether a DMA-capable device may access the page: the
// page must be in ALL state and its DEV bit must be clear.
func (m *Memory) CheckDMA(page int) error {
	st, err := m.State(page)
	if err != nil {
		return err
	}
	if st != AccessAll {
		return fmt.Errorf("%w: DMA -> page %d (%v)", ErrDenied, page, st)
	}
	if m.pages[page].dev {
		return fmt.Errorf("%w: DMA -> page %d (DEV bit set)", ErrDenied, page)
	}
	return nil
}

// SetDEV sets or clears the DEV bit for a page. SKINIT sets the bits for
// the SLB's pages before measurement begins.
func (m *Memory) SetDEV(page int, protected bool) error {
	if page < 0 || page >= len(m.pages) {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	m.pages[page].dev = protected
	return nil
}

// DEV reports the DEV bit for a page.
func (m *Memory) DEV(page int) (bool, error) {
	if page < 0 || page >= len(m.pages) {
		return false, fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	return m.pages[page].dev, nil
}

// checkRange validates [addr, addr+n).
func (m *Memory) checkRange(addr uint32, n int) error {
	if n < 0 || int(addr) > m.size || int(addr)+n > m.size {
		return fmt.Errorf("%w: [%d, %d)", ErrOutOfRange, addr, int(addr)+n)
	}
	return nil
}

// chunkFor materializes and returns the chunk containing addr.
func (m *Memory) chunkFor(addr uint32) []byte {
	ci := int(addr >> chunkShift)
	c := m.chunks[ci]
	if c == nil {
		c = make([]byte, ChunkSize)
		m.chunks[ci] = c
	}
	return c
}

// ReadInto fills dst with the bytes at addr without access checks and
// without allocating. Hardware microcode (SKINIT streaming the SLB to the
// TPM) uses it with a pooled buffer; software paths must go through the
// chipset, which checks the table.
func (m *Memory) ReadInto(dst []byte, addr uint32) error {
	if err := m.checkRange(addr, len(dst)); err != nil {
		return err
	}
	for len(dst) > 0 {
		off := int(addr) & (ChunkSize - 1)
		n := ChunkSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if c := m.chunks[addr>>chunkShift]; c != nil {
			copy(dst[:n], c[off:])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		addr += uint32(n)
	}
	return nil
}

// View returns a bounded read-only subslice of physical memory covering
// [addr, addr+n), without copying and without access checks, when the range
// lies within a single backing chunk; ok is false when it does not (the
// caller falls back to ReadInto/ReadRaw). Reads of never-written memory
// view a shared zero chunk. Callers must not write through or retain the
// view across writes: it aliases live memory.
func (m *Memory) View(addr uint32, n int) (b []byte, ok bool) {
	if n < 0 || int(addr)+n > m.size {
		return nil, false
	}
	off := int(addr) & (ChunkSize - 1)
	if off+n > ChunkSize {
		return nil, false
	}
	c := m.chunks[addr>>chunkShift]
	if c == nil {
		return zeroChunk[off : off+n : off+n], true
	}
	return c[off : off+n : off+n], true
}

// ReadRaw copies n bytes at addr without access checks. Test fixtures and
// untrusted callers that retain the result use it; zero-allocation paths
// use ReadInto or View.
func (m *Memory) ReadRaw(addr uint32, n int) ([]byte, error) {
	if err := m.checkRange(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	_ = m.ReadInto(out, addr)
	return out, nil
}

// WriteRaw copies b into memory at addr without access checks.
func (m *Memory) WriteRaw(addr uint32, b []byte) error {
	if err := m.checkRange(addr, len(b)); err != nil {
		return err
	}
	m.bumpRange(addr, len(b))
	for len(b) > 0 {
		off := int(addr) & (ChunkSize - 1)
		n := ChunkSize - off
		if n > len(b) {
			n = len(b)
		}
		copy(m.chunkFor(addr)[off:], b[:n])
		b = b[n:]
		addr += uint32(n)
	}
	return nil
}

// ReadWordRaw reads a 32-bit little-endian word without access checks or
// allocation.
func (m *Memory) ReadWordRaw(addr uint32) (uint32, error) {
	if b, ok := m.View(addr, 4); ok {
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
	}
	var buf [4]byte
	if err := m.ReadInto(buf[:], addr); err != nil {
		return 0, err
	}
	return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24, nil
}

// WriteWordRaw writes a 32-bit little-endian word without access checks or
// allocation.
func (m *Memory) WriteWordRaw(addr uint32, v uint32) error {
	if err := m.checkRange(addr, 4); err != nil {
		return err
	}
	m.bumpRange(addr, 4)
	off := int(addr) & (ChunkSize - 1)
	if off+4 <= ChunkSize {
		c := m.chunkFor(addr)
		c[off] = byte(v)
		c[off+1] = byte(v >> 8)
		c[off+2] = byte(v >> 16)
		c[off+3] = byte(v >> 24)
		return nil
	}
	for i := 0; i < 4; i++ {
		a := addr + uint32(i)
		m.chunkFor(a)[int(a)&(ChunkSize-1)] = byte(v >> (8 * i))
	}
	return nil
}

// ReadByteRaw reads one byte without access checks or allocation.
func (m *Memory) ReadByteRaw(addr uint32) (byte, error) {
	if err := m.checkRange(addr, 1); err != nil {
		return 0, err
	}
	c := m.chunks[addr>>chunkShift]
	if c == nil {
		return 0, nil
	}
	return c[int(addr)&(ChunkSize-1)], nil
}

// WriteByteRaw writes one byte without access checks or allocation.
func (m *Memory) WriteByteRaw(addr uint32, v byte) error {
	if err := m.checkRange(addr, 1); err != nil {
		return err
	}
	m.pages[int(addr)/PageSize].ver++
	m.chunkFor(addr)[int(addr)&(ChunkSize-1)] = v
	return nil
}

// ZeroRange zeroes [addr, addr+n) without access checks; SKILL microcode
// uses it to erase a killed PAL's pages. Never-written chunks are already
// zero and are skipped; materialized ones are cleared in place.
func (m *Memory) ZeroRange(addr uint32, n int) error {
	if err := m.checkRange(addr, n); err != nil {
		return err
	}
	m.bumpRange(addr, n)
	for n > 0 {
		off := int(addr) & (ChunkSize - 1)
		step := ChunkSize - off
		if step > n {
			step = n
		}
		if c := m.chunks[addr>>chunkShift]; c != nil {
			clear(c[off : off+step])
		}
		n -= step
		addr += uint32(step)
	}
	return nil
}

// Region describes a contiguous range of physical memory, page-aligned by
// construction when created with RegionForPages.
type Region struct {
	Base uint32 // starting physical address
	Size int    // length in bytes
}

// RegionForPages returns the region covering pages [first, first+count).
func RegionForPages(first, count int) Region {
	return Region{Base: uint32(first * PageSize), Size: count * PageSize}
}

// Pages returns the list of page numbers the region touches. It allocates;
// hot paths iterate [FirstPage, LastPage] directly.
func (r Region) Pages() []int {
	if r.Size <= 0 {
		return nil
	}
	first := PageOf(r.Base)
	last := PageOf(r.Base + uint32(r.Size) - 1)
	out := make([]int, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, p)
	}
	return out
}

// FirstPage returns the first page the region touches (meaningless for
// empty regions; pair with LastPage and check Size > 0).
func (r Region) FirstPage() int { return PageOf(r.Base) }

// LastPage returns the last page the region touches.
func (r Region) LastPage() int { return PageOf(r.Base + uint32(r.Size) - 1) }

// Contains reports whether addr lies inside the region.
func (r Region) Contains(addr uint32) bool {
	return addr >= r.Base && addr < r.Base+uint32(r.Size)
}

// End returns the first address past the region.
func (r Region) End() uint32 { return r.Base + uint32(r.Size) }
