package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewRoundsUpToPage(t *testing.T) {
	m := New(1)
	if m.Size() != PageSize || m.NumPages() != 1 {
		t.Fatalf("size=%d pages=%d", m.Size(), m.NumPages())
	}
	m = New(PageSize + 1)
	if m.NumPages() != 2 {
		t.Fatalf("pages=%d, want 2", m.NumPages())
	}
}

func TestPagesStartAll(t *testing.T) {
	m := New(4 * PageSize)
	for p := 0; p < m.NumPages(); p++ {
		st, err := m.State(p)
		if err != nil || st != AccessAll {
			t.Fatalf("page %d: %v %v", p, st, err)
		}
	}
}

func TestClaimSecludeReleaseCycle(t *testing.T) {
	m := New(4 * PageSize)
	// Fig 5(b): ALL -> CPU1 (launch)
	if err := m.Claim(2, 1); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.State(2); st != PageState(1) {
		t.Fatalf("state=%v, want CPU1", st)
	}
	// CPU1 -> NONE (suspend)
	if err := m.Seclude(2, 1); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.State(2); st != AccessNone {
		t.Fatalf("state=%v, want NONE", st)
	}
	// NONE -> CPU0 (resume on another CPU, §5.3: PAL may resume anywhere)
	if err := m.Claim(2, 0); err != nil {
		t.Fatal(err)
	}
	// CPU0 -> ALL (SFREE)
	if err := m.Release(2, 0); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.State(2); st != AccessAll {
		t.Fatalf("state=%v, want ALL", st)
	}
}

func TestClaimConflicts(t *testing.T) {
	m := New(2 * PageSize)
	if err := m.Claim(0, 1); err != nil {
		t.Fatal(err)
	}
	// Another CPU cannot steal an owned page.
	if err := m.Claim(0, 2); !errors.Is(err, ErrPageBusy) {
		t.Fatalf("cross-CPU claim: %v, want ErrPageBusy", err)
	}
	// Same CPU re-claim is idempotent.
	if err := m.Claim(0, 1); err != nil {
		t.Fatalf("idempotent claim: %v", err)
	}
}

func TestSecludeRequiresOwner(t *testing.T) {
	m := New(2 * PageSize)
	if err := m.Seclude(0, 1); !errors.Is(err, ErrPageBusy) {
		t.Fatalf("seclude unowned: %v", err)
	}
	m.Claim(0, 1)
	if err := m.Seclude(0, 2); !errors.Is(err, ErrPageBusy) {
		t.Fatalf("seclude by non-owner: %v", err)
	}
}

func TestReleaseByNonOwnerFails(t *testing.T) {
	m := New(2 * PageSize)
	m.Claim(0, 1)
	if err := m.Release(0, 2); !errors.Is(err, ErrPageBusy) {
		t.Fatalf("release by non-owner: %v", err)
	}
	// SKILL path: release from NONE is allowed regardless of CPU.
	m.Seclude(0, 1)
	if err := m.Release(0, 5); err != nil {
		t.Fatalf("release from NONE: %v", err)
	}
}

func TestClaimInvalidCPU(t *testing.T) {
	m := New(PageSize)
	if err := m.Claim(0, -3); err == nil {
		t.Fatal("negative CPU id accepted")
	}
}

func TestCheckCPU(t *testing.T) {
	m := New(2 * PageSize)
	if err := m.CheckCPU(0, 3); err != nil {
		t.Fatalf("ALL page must be accessible: %v", err)
	}
	m.Claim(0, 1)
	if err := m.CheckCPU(0, 1); err != nil {
		t.Fatalf("owner access denied: %v", err)
	}
	if err := m.CheckCPU(0, 2); !errors.Is(err, ErrDenied) {
		t.Fatalf("non-owner access: %v", err)
	}
	m.Seclude(0, 1)
	if err := m.CheckCPU(0, 1); !errors.Is(err, ErrDenied) {
		t.Fatalf("NONE page accessible to former owner: %v", err)
	}
}

func TestCheckDMA(t *testing.T) {
	m := New(2 * PageSize)
	if err := m.CheckDMA(0); err != nil {
		t.Fatalf("DMA to ALL page: %v", err)
	}
	m.SetDEV(0, true)
	if err := m.CheckDMA(0); !errors.Is(err, ErrDenied) {
		t.Fatalf("DMA past DEV bit: %v", err)
	}
	m.SetDEV(0, false)
	m.Claim(0, 1)
	if err := m.CheckDMA(0); !errors.Is(err, ErrDenied) {
		t.Fatalf("DMA to CPU-owned page: %v", err)
	}
}

func TestDEVAccessors(t *testing.T) {
	m := New(PageSize)
	if on, _ := m.DEV(0); on {
		t.Fatal("DEV bit set initially")
	}
	m.SetDEV(0, true)
	if on, _ := m.DEV(0); !on {
		t.Fatal("DEV bit did not set")
	}
	if err := m.SetDEV(99, true); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("SetDEV out of range: %v", err)
	}
	if _, err := m.DEV(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("DEV out of range: %v", err)
	}
}

func TestReadWriteRaw(t *testing.T) {
	m := New(2 * PageSize)
	if err := m.WriteRaw(100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadRaw(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got % x", got)
	}
}

func TestReadRawBounds(t *testing.T) {
	m := New(PageSize)
	if _, err := m.ReadRaw(PageSize-1, 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overrun read: %v", err)
	}
	if err := m.WriteRaw(PageSize, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overrun write: %v", err)
	}
	if _, err := m.ReadRaw(0, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative length: %v", err)
	}
}

func TestZeroRange(t *testing.T) {
	m := New(PageSize)
	m.WriteRaw(0, []byte{0xff, 0xff, 0xff, 0xff})
	if err := m.ZeroRange(1, 2); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadRaw(0, 4)
	want := []byte{0xff, 0, 0, 0xff}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestStateOutOfRange(t *testing.T) {
	m := New(PageSize)
	if _, err := m.State(1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("State(1): %v", err)
	}
	if err := m.Claim(-1, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Claim(-1): %v", err)
	}
}

func TestPageStateString(t *testing.T) {
	cases := map[PageState]string{
		AccessAll:     "ALL",
		AccessNone:    "NONE",
		PageState(3):  "CPU3",
		PageState(-9): "invalid(-9)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

func TestRegionPages(t *testing.T) {
	r := RegionForPages(2, 3)
	pages := r.Pages()
	if len(pages) != 3 || pages[0] != 2 || pages[2] != 4 {
		t.Fatalf("pages = %v", pages)
	}
	// Unaligned region spanning a boundary.
	r = Region{Base: PageSize - 1, Size: 2}
	pages = r.Pages()
	if len(pages) != 2 || pages[0] != 0 || pages[1] != 1 {
		t.Fatalf("unaligned pages = %v", pages)
	}
	if (Region{Size: 0}).Pages() != nil {
		t.Fatal("empty region has pages")
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 100, Size: 10}
	if !r.Contains(100) || !r.Contains(109) {
		t.Fatal("region must contain its bounds")
	}
	if r.Contains(99) || r.Contains(110) {
		t.Fatal("region contains outside addresses")
	}
	if r.End() != 110 {
		t.Fatalf("End = %d", r.End())
	}
}

// Property: the access-control state machine never lets two distinct CPUs
// both pass CheckCPU on the same page, unless the page is in ALL.
func TestExclusionInvariantProperty(t *testing.T) {
	type op struct {
		Kind byte // 0 claim, 1 seclude, 2 release
		Page uint8
		CPU  uint8
	}
	f := func(ops []op) bool {
		m := New(8 * PageSize)
		for _, o := range ops {
			page := int(o.Page) % m.NumPages()
			cpu := int(o.CPU) % 4
			switch o.Kind % 3 {
			case 0:
				m.Claim(page, cpu) // errors allowed; invariant is what matters
			case 1:
				m.Seclude(page, cpu)
			case 2:
				m.Release(page, cpu)
			}
		}
		for p := 0; p < m.NumPages(); p++ {
			st, _ := m.State(p)
			if st == AccessAll {
				continue
			}
			granted := 0
			for cpu := 0; cpu < 4; cpu++ {
				if m.CheckCPU(p, cpu) == nil {
					granted++
				}
			}
			if st == AccessNone && granted != 0 {
				return false
			}
			if st >= 0 && granted != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: round-tripping bytes through WriteRaw/ReadRaw preserves them.
func TestReadWriteRoundTripProperty(t *testing.T) {
	m := New(16 * PageSize)
	f := func(addr uint16, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		a := uint32(addr)
		if int(a)+len(data) > m.Size() {
			return true // out of range; not this property's concern
		}
		if err := m.WriteRaw(a, data); err != nil {
			return false
		}
		got, err := m.ReadRaw(a, len(data))
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
