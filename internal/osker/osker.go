// Package osker models the untrusted operating system of the paper's
// execution model. The OS stays the platform's resource manager (§5's
// second requirement): it allocates memory pages and CPU time to PALs,
// suspends and resumes the legacy workload around late launches, and — on
// recommended hardware — schedules PALs alongside legacy jobs. It is
// untrusted: nothing here is inside any PAL's TCB, and the isolation tests
// drive attacks from exactly this layer.
package osker

import (
	"errors"
	"fmt"
	"time"

	"minimaltcb/internal/mem"
	"minimaltcb/internal/platform"
)

// ErrNoMemory is returned when the allocator cannot satisfy a request.
var ErrNoMemory = errors.New("osker: out of contiguous physical pages")

// PageAllocator hands out physical page ranges first-fit. The paper notes
// the OS must cope with discontiguous physical memory once PALs carve
// pages out (§5.2.2); this allocator models that by tracking arbitrary
// holes, though each single allocation is contiguous (as a PAL's SLB must
// be).
type PageAllocator struct {
	used []bool
	// firstPage reserves low pages for OS structures so PALs never land
	// at physical address 0 (which would make nil-ish addresses valid).
	firstPage int
}

// NewPageAllocator manages pages [reserve, total).
func NewPageAllocator(total, reserve int) *PageAllocator {
	return &PageAllocator{used: make([]bool, total), firstPage: reserve}
}

// Alloc finds n contiguous free pages and returns their region.
func (a *PageAllocator) Alloc(n int) (mem.Region, error) {
	if n <= 0 {
		return mem.Region{}, fmt.Errorf("osker: alloc of %d pages", n)
	}
	run := 0
	for p := a.firstPage; p < len(a.used); p++ {
		if a.used[p] {
			run = 0
			continue
		}
		run++
		if run == n {
			first := p - n + 1
			for q := first; q <= p; q++ {
				a.used[q] = true
			}
			return mem.RegionForPages(first, n), nil
		}
	}
	return mem.Region{}, fmt.Errorf("%w: %d pages requested", ErrNoMemory, n)
}

// Free returns a region's pages to the allocator.
func (a *PageAllocator) Free(r mem.Region) {
	if r.Size <= 0 {
		return
	}
	for p, last := r.FirstPage(), r.LastPage(); p <= last; p++ {
		if p >= 0 && p < len(a.used) {
			a.used[p] = false
		}
	}
}

// FreePages counts currently free pages.
func (a *PageAllocator) FreePages() int {
	n := 0
	for p := a.firstPage; p < len(a.used); p++ {
		if !a.used[p] {
			n++
		}
	}
	return n
}

// Kernel is the untrusted OS instance on a machine.
type Kernel struct {
	Machine *platform.Machine
	Alloc   *PageAllocator

	// suspended tracks whether the legacy environment is parked for a
	// late launch (the SEA kernel-module path, §4.1).
	suspended bool
	// SuspendCost/ResumeCost model parking and unparking the legacy
	// environment. The paper calls both "efficient" since device and
	// memory state stays in place; the dominant cost is quiescing other
	// cores for SKINIT. These are charged to the clock on each switch.
	SuspendCost, ResumeCost time.Duration

	// Suspends counts legacy-environment suspensions (statistics).
	Suspends int
}

// ReservedPages is how many low pages the kernel keeps for itself.
const ReservedPages = 16

// NewKernel boots the untrusted OS on a machine.
func NewKernel(m *platform.Machine) *Kernel {
	return &Kernel{
		Machine:     m,
		Alloc:       NewPageAllocator(m.Chipset.Memory().NumPages(), ReservedPages),
		SuspendCost: 30 * time.Microsecond,
		ResumeCost:  30 * time.Microsecond,
	}
}

// PlaceImage allocates pages for an image plus extraDataPages of PAL
// data/stack space and copies the image in. The returned region covers
// image and data (the SECB's page list: "a superset of the pages
// containing the PAL binary", §5.2.1).
func (k *Kernel) PlaceImage(image []byte, extraDataPages int) (mem.Region, error) {
	pages := (len(image)+mem.PageSize-1)/mem.PageSize + extraDataPages
	r, err := k.Alloc.Alloc(pages)
	if err != nil {
		return mem.Region{}, err
	}
	if err := k.Machine.Chipset.Memory().WriteRaw(r.Base, image); err != nil {
		k.Alloc.Free(r)
		return mem.Region{}, err
	}
	return r, nil
}

// ReleaseRegion frees a PAL's pages back to the OS pool. The pages must
// already be in the ALL state (SFREE/SKILL ran).
func (k *Kernel) ReleaseRegion(r mem.Region) {
	k.Alloc.Free(r)
}

// SuspendLegacy parks the legacy OS and applications so a late launch can
// take the machine (SEA on today's hardware). All state stays in memory.
func (k *Kernel) SuspendLegacy() {
	if k.suspended {
		return
	}
	k.suspended = true
	k.Suspends++
	k.Machine.Clock.Advance(k.SuspendCost)
}

// ResumeLegacy unparks the legacy environment after the PAL exits.
func (k *Kernel) ResumeLegacy() {
	if !k.suspended {
		return
	}
	k.suspended = false
	k.Machine.Clock.Advance(k.ResumeCost)
}

// Suspended reports whether the legacy environment is parked.
func (k *Kernel) Suspended() bool { return k.suspended }

// StallAllCPUs charges d of busy time to every core's timeline starting at
// the current clock — the whole-platform stall a late launch imposes on
// today's multi-processor hardware ("the late launch operation requires
// all but one of the processors to be in a special idle state", §4.2).
func (k *Kernel) StallAllCPUs(d time.Duration) {
	now := k.Machine.Clock.Now()
	for _, c := range k.Machine.CPUs {
		c.Timeline.Occupy(now-d, d)
	}
}

// OccupyCPU charges d of busy time to a single core's timeline (the
// recommended-hardware cost model, where PALs run concurrently with the
// legacy OS).
func (k *Kernel) OccupyCPU(id int, d time.Duration) {
	now := k.Machine.Clock.Now()
	k.Machine.CPUs[id].Timeline.Occupy(now-d, d)
}

// LegacyWorkload models the throughput-oriented background jobs (builds,
// requests, batch work) that soak up whatever CPU time secure execution
// leaves free. The concurrency experiment uses it to turn idle CPU-seconds
// into the user-visible quantity — legacy jobs completed — under each
// architecture.
type LegacyWorkload struct {
	// JobCost is the CPU time one legacy job consumes.
	JobCost time.Duration
}

// JobsCompleted reports how many whole jobs fit into the CPU time that
// secure execution did not consume over the elapsed horizon, across all
// cores of the kernel's machine.
func (w LegacyWorkload) JobsCompleted(k *Kernel) int64 {
	if w.JobCost <= 0 {
		return 0
	}
	horizon := k.Machine.Clock.Now()
	var jobs int64
	for _, c := range k.Machine.CPUs {
		idle := horizon - c.Timeline.Busy
		if idle > 0 {
			jobs += int64(idle / w.JobCost)
		}
	}
	return jobs
}
