package osker

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"minimaltcb/internal/mem"
	"minimaltcb/internal/platform"
)

func newKernel(t *testing.T) *Kernel {
	t.Helper()
	p := platform.TyanN3600R() // no TPM: fast to build
	m, err := platform.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return NewKernel(m)
}

func TestAllocatorBasics(t *testing.T) {
	a := NewPageAllocator(64, 4)
	r, err := a.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pages()) != 3 || r.Pages()[0] < 4 {
		t.Fatalf("region %v", r.Pages())
	}
	free := a.FreePages()
	a.Free(r)
	if a.FreePages() != free+3 {
		t.Fatal("free did not return pages")
	}
}

func TestAllocatorNeverHandsOutReservedPages(t *testing.T) {
	a := NewPageAllocator(16, 8)
	for {
		r, err := a.Alloc(1)
		if err != nil {
			break
		}
		if r.Pages()[0] < 8 {
			t.Fatalf("reserved page %d allocated", r.Pages()[0])
		}
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewPageAllocator(12, 4)
	if _, err := a.Alloc(9); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("oversized alloc: %v", err)
	}
	if _, err := a.Alloc(8); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("alloc after exhaustion: %v", err)
	}
}

func TestAllocatorRejectsZero(t *testing.T) {
	a := NewPageAllocator(8, 0)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := a.Alloc(-3); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestAllocatorFragmentation(t *testing.T) {
	a := NewPageAllocator(16, 0)
	r1, _ := a.Alloc(4)
	r2, _ := a.Alloc(4)
	r3, _ := a.Alloc(4)
	_ = r2
	a.Free(r1)
	a.Free(r3)
	// 8 pages free but the largest hole is 4+4 non-adjacent? r1=[0,4),
	// r3=[8,12), plus [12,16) untouched: r3+tail = 8 contiguous.
	if _, err := a.Alloc(8); err != nil {
		t.Fatalf("8-page alloc from coalesced tail: %v", err)
	}
	// Now only the r1 hole remains.
	if _, err := a.Alloc(5); !errors.Is(err, ErrNoMemory) {
		t.Fatal("allocated 5 pages from a 4-page hole")
	}
}

// Property: no two live allocations ever overlap.
func TestAllocatorNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := NewPageAllocator(256, 4)
		owner := map[int]int{}
		var regions []mem.Region
		for i, s := range sizes {
			n := int(s)%7 + 1
			r, err := a.Alloc(n)
			if err != nil {
				continue
			}
			for _, p := range r.Pages() {
				if prev, taken := owner[p]; taken {
					t.Logf("page %d owned by both %d and %d", p, prev, i)
					return false
				}
				owner[p] = i
			}
			regions = append(regions, r)
			// Free every third region to create churn.
			if len(regions)%3 == 0 {
				victim := regions[0]
				regions = regions[1:]
				for _, p := range victim.Pages() {
					delete(owner, p)
				}
				a.Free(victim)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelPlaceImage(t *testing.T) {
	k := newKernel(t)
	image := []byte("PAL image bytes here")
	r, err := k.PlaceImage(image, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One page for the image + 2 data pages.
	if len(r.Pages()) != 3 {
		t.Fatalf("pages %v", r.Pages())
	}
	got, _ := k.Machine.Chipset.Memory().ReadRaw(r.Base, len(image))
	if string(got) != string(image) {
		t.Fatal("image not copied")
	}
	k.ReleaseRegion(r)
}

func TestKernelSuspendResume(t *testing.T) {
	k := newKernel(t)
	before := k.Machine.Clock.Now()
	k.SuspendLegacy()
	if !k.Suspended() {
		t.Fatal("not suspended")
	}
	k.SuspendLegacy() // idempotent
	if k.Suspends != 1 {
		t.Fatalf("suspends %d", k.Suspends)
	}
	k.ResumeLegacy()
	if k.Suspended() {
		t.Fatal("still suspended")
	}
	k.ResumeLegacy() // idempotent
	elapsed := k.Machine.Clock.Now() - before
	if elapsed != k.SuspendCost+k.ResumeCost {
		t.Fatalf("charged %v", elapsed)
	}
}

func TestLegacyWorkloadJobs(t *testing.T) {
	k := newKernel(t) // 4 CPUs (Tyan)
	w := LegacyWorkload{JobCost: 10 * time.Millisecond}
	if w.JobsCompleted(k) != 0 {
		t.Fatal("jobs completed before any time elapsed")
	}
	// 100 ms horizon, one core fully busy with secure work.
	k.Machine.Clock.Advance(100 * time.Millisecond)
	k.OccupyCPU(1, 100*time.Millisecond)
	// 3 idle cores × 10 jobs each.
	if got := w.JobsCompleted(k); got != 30 {
		t.Fatalf("jobs = %d, want 30", got)
	}
	// Whole-platform stall: nothing runs.
	k.StallAllCPUs(100 * time.Millisecond)
	// CPUs 0,2,3 now each have 100ms busy; CPU1 has 200ms busy over a
	// 100ms horizon (clamped by Utilization but not by Busy) — jobs use
	// idle = horizon - busy, so all are <= 0.
	if got := w.JobsCompleted(k); got != 0 {
		t.Fatalf("jobs = %d after full stall, want 0", got)
	}
	if (LegacyWorkload{}).JobsCompleted(k) != 0 {
		t.Fatal("zero-cost workload must report 0")
	}
}

func TestStallAllCPUs(t *testing.T) {
	k := newKernel(t)
	k.Machine.Clock.Advance(time.Millisecond)
	k.StallAllCPUs(time.Millisecond)
	for i, c := range k.Machine.CPUs {
		if c.Timeline.Busy != time.Millisecond {
			t.Fatalf("CPU%d busy %v", i, c.Timeline.Busy)
		}
	}
	k.OccupyCPU(1, time.Millisecond)
	if k.Machine.CPUs[1].Timeline.Busy != 2*time.Millisecond {
		t.Fatal("OccupyCPU did not add")
	}
	if k.Machine.CPUs[0].Timeline.Busy != time.Millisecond {
		t.Fatal("OccupyCPU touched other cores")
	}
}
