// Package acmod models Intel's Authenticated Code Module, the signed blob
// SENTER loads before the PAL (§2.2.2).
//
// On TXT hardware the chipset verifies the ACMod's signature with a fused
// public key, extends the ACMod's measurement into PCR 17, runs the ACMod,
// and the ACMod in turn hashes the PAL on the main CPU and extends it into
// PCR 18 — the architectural difference that makes Intel's Table 1 column
// grow slowly with PAL size while AMD's grows steeply.
package acmod

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha1"
	"fmt"
	"sync"

	"minimaltcb/internal/sim"
)

// Size is the ACMod image size. The paper observes the module is "just
// over 10 KB" and that a 0 KB SENTER falls between an 8 KB and a 16 KB
// SKINIT, matching the transfer of this many bytes.
const Size = 10547

// Module is a signed authenticated code module.
type Module struct {
	// Code is the module image (Size bytes).
	Code []byte
	// Signature is the Intel signature over SHA1(Code).
	Signature []byte
}

// Vendor holds the signing authority: the private key models Intel's code
// signing key, the public key the copy fused into the chipset.
type Vendor struct {
	key *rsa.PrivateKey
}

// Vendor keys are cached per (seed, bits): rsa.GenerateKey is free to
// consume its randomness source unpredictably, so reproducibility within a
// process comes from the cache rather than the stream.
var (
	vendorMu    sync.Mutex
	vendorCache = map[[2]uint64]*rsa.PrivateKey{}
)

// NewVendor creates a signing authority for a seed. The same seed returns
// the same key for the lifetime of the process.
func NewVendor(seed uint64, bits int) (*Vendor, error) {
	if bits == 0 {
		bits = 2048
	}
	vendorMu.Lock()
	defer vendorMu.Unlock()
	ck := [2]uint64{seed, uint64(bits)}
	if key, ok := vendorCache[ck]; ok {
		return &Vendor{key: key}, nil
	}
	key, err := rsa.GenerateKey(sim.NewRNG(seed^0x41434d4f44), bits)
	if err != nil {
		return nil, fmt.Errorf("acmod: vendor key: %w", err)
	}
	vendorCache[ck] = key
	return &Vendor{key: key}, nil
}

// Public returns the verification key the chipset fuses in.
func (v *Vendor) Public() *rsa.PublicKey { return &v.key.PublicKey }

// The default module is cached per signing key: every Intel platform
// instance ships the same deterministic Size-byte image, and re-generating
// and re-signing 10 KB per platform.New dominated machine construction
// cost. The cached Module is shared across machines; SENTER only reads it.
var (
	defaultModMu    sync.Mutex
	defaultModCache = map[*rsa.PrivateKey]*Module{}
)

// Sign produces a signed module over the given image. Passing nil code
// generates a deterministic Size-byte image, which is what platform
// profiles ship; that module is built and signed once per key.
func (v *Vendor) Sign(code []byte) (*Module, error) {
	cached := code == nil
	if cached {
		defaultModMu.Lock()
		m := defaultModCache[v.key]
		defaultModMu.Unlock()
		if m != nil {
			return copyModule(m), nil
		}
		code = make([]byte, Size)
		sim.NewRNG(0x414d4f44).Fill(code)
	}
	digest := sha1.Sum(code)
	sig, err := rsa.SignPKCS1v15(nil, v.key, crypto.SHA1, digest[:])
	if err != nil {
		return nil, fmt.Errorf("acmod: sign: %w", err)
	}
	m := &Module{Code: code, Signature: sig}
	if cached {
		defaultModMu.Lock()
		defaultModCache[v.key] = m
		defaultModMu.Unlock()
		return copyModule(m), nil
	}
	return m, nil
}

// copyModule hands a caller its own slices so nobody can corrupt the
// cached original (callers are free to tamper with a module to test the
// chipset's rejection path).
func copyModule(m *Module) *Module {
	return &Module{
		Code:      append([]byte(nil), m.Code...),
		Signature: append([]byte(nil), m.Signature...),
	}
}

// Successful verifications are memoized by content: the key is the module
// digest plus a digest of the signature bytes, so a hit proves this exact
// (code, signature) pair passed RSA verification against this fused key
// before. Tampering with either — even in place, preserving slice identity
// — changes the key and forces a live verification, which fails. Failures
// are never cached. The code digest is computed on every call regardless;
// a hit only skips the (allocating) RSA operation.
type verifyKey struct {
	pub    *rsa.PublicKey
	digest [sha1.Size]byte
	sig    [sha1.Size]byte
}

var (
	verifyMu    sync.Mutex
	verifyCache = map[verifyKey]struct{}{}
)

// Verify checks the module against the fused public key, as the chipset
// does during SENTER. A module that fails verification aborts the late
// launch.
func Verify(pub *rsa.PublicKey, m *Module) error {
	if m == nil {
		return fmt.Errorf("acmod: nil module")
	}
	return verifyDigest(pub, m, sha1.Sum(m.Code))
}

// VerifyWithDigest is Verify for a caller that already holds SHA-1 of
// m.Code from a content-validated source (the CPU's launch-measurement
// cache compares the module's bytes against the cached copy before
// vouching for the digest). The memoization key is identical to Verify's,
// so in-place tampering with the code changes the supplied digest —
// through the caller's content compare — and forces a live verification.
func VerifyWithDigest(pub *rsa.PublicKey, m *Module, codeDigest [sha1.Size]byte) error {
	if m == nil {
		return fmt.Errorf("acmod: nil module")
	}
	return verifyDigest(pub, m, codeDigest)
}

func verifyDigest(pub *rsa.PublicKey, m *Module, digest [sha1.Size]byte) error {
	k := verifyKey{pub: pub, digest: digest, sig: sha1.Sum(m.Signature)}
	verifyMu.Lock()
	_, ok := verifyCache[k]
	verifyMu.Unlock()
	if ok {
		return nil
	}
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA1, digest[:], m.Signature); err != nil {
		return fmt.Errorf("acmod: signature verification failed: %w", err)
	}
	verifyMu.Lock()
	if len(verifyCache) >= 1024 {
		verifyCache = map[verifyKey]struct{}{}
	}
	verifyCache[k] = struct{}{}
	verifyMu.Unlock()
	return nil
}
