// Package acmod models Intel's Authenticated Code Module, the signed blob
// SENTER loads before the PAL (§2.2.2).
//
// On TXT hardware the chipset verifies the ACMod's signature with a fused
// public key, extends the ACMod's measurement into PCR 17, runs the ACMod,
// and the ACMod in turn hashes the PAL on the main CPU and extends it into
// PCR 18 — the architectural difference that makes Intel's Table 1 column
// grow slowly with PAL size while AMD's grows steeply.
package acmod

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha1"
	"fmt"
	"sync"

	"minimaltcb/internal/sim"
)

// Size is the ACMod image size. The paper observes the module is "just
// over 10 KB" and that a 0 KB SENTER falls between an 8 KB and a 16 KB
// SKINIT, matching the transfer of this many bytes.
const Size = 10547

// Module is a signed authenticated code module.
type Module struct {
	// Code is the module image (Size bytes).
	Code []byte
	// Signature is the Intel signature over SHA1(Code).
	Signature []byte
}

// Vendor holds the signing authority: the private key models Intel's code
// signing key, the public key the copy fused into the chipset.
type Vendor struct {
	key *rsa.PrivateKey
}

// Vendor keys are cached per (seed, bits): rsa.GenerateKey is free to
// consume its randomness source unpredictably, so reproducibility within a
// process comes from the cache rather than the stream.
var (
	vendorMu    sync.Mutex
	vendorCache = map[[2]uint64]*rsa.PrivateKey{}
)

// NewVendor creates a signing authority for a seed. The same seed returns
// the same key for the lifetime of the process.
func NewVendor(seed uint64, bits int) (*Vendor, error) {
	if bits == 0 {
		bits = 2048
	}
	vendorMu.Lock()
	defer vendorMu.Unlock()
	ck := [2]uint64{seed, uint64(bits)}
	if key, ok := vendorCache[ck]; ok {
		return &Vendor{key: key}, nil
	}
	key, err := rsa.GenerateKey(sim.NewRNG(seed^0x41434d4f44), bits)
	if err != nil {
		return nil, fmt.Errorf("acmod: vendor key: %w", err)
	}
	vendorCache[ck] = key
	return &Vendor{key: key}, nil
}

// Public returns the verification key the chipset fuses in.
func (v *Vendor) Public() *rsa.PublicKey { return &v.key.PublicKey }

// Sign produces a signed module over the given image. Passing nil code
// generates a deterministic Size-byte image, which is what platform
// profiles ship.
func (v *Vendor) Sign(code []byte) (*Module, error) {
	if code == nil {
		code = make([]byte, Size)
		sim.NewRNG(0x414d4f44).Fill(code)
	}
	digest := sha1.Sum(code)
	sig, err := rsa.SignPKCS1v15(nil, v.key, crypto.SHA1, digest[:])
	if err != nil {
		return nil, fmt.Errorf("acmod: sign: %w", err)
	}
	return &Module{Code: code, Signature: sig}, nil
}

// Verify checks the module against the fused public key, as the chipset
// does during SENTER. A module that fails verification aborts the late
// launch.
func Verify(pub *rsa.PublicKey, m *Module) error {
	if m == nil {
		return fmt.Errorf("acmod: nil module")
	}
	digest := sha1.Sum(m.Code)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA1, digest[:], m.Signature); err != nil {
		return fmt.Errorf("acmod: signature verification failed: %w", err)
	}
	return nil
}
