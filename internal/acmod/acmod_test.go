package acmod

import (
	"crypto/sha1"
	"testing"
)

func testVendor(t *testing.T) *Vendor {
	t.Helper()
	v, err := NewVendor(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSignVerify(t *testing.T) {
	v := testVendor(t)
	m, err := v.Sign(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Code) != Size {
		t.Fatalf("default module size %d, want %d", len(m.Code), Size)
	}
	if err := Verify(v.Public(), m); err != nil {
		t.Fatalf("genuine module rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedCode(t *testing.T) {
	v := testVendor(t)
	m, _ := v.Sign(nil)
	m.Code[0] ^= 1
	if err := Verify(v.Public(), m); err == nil {
		t.Fatal("tampered ACMod verified — an attacker could late launch arbitrary code as Intel's")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	v := testVendor(t)
	m, _ := v.Sign(nil)
	m.Signature[0] ^= 1
	if err := Verify(v.Public(), m); err == nil {
		t.Fatal("tampered signature verified")
	}
}

func TestVerifyRejectsForeignVendor(t *testing.T) {
	v1 := testVendor(t)
	v2, err := NewVendor(2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := v2.Sign(nil)
	if err := Verify(v1.Public(), m); err == nil {
		t.Fatal("module from another vendor verified against fused key")
	}
}

func TestVerifyNil(t *testing.T) {
	v := testVendor(t)
	if err := Verify(v.Public(), nil); err == nil {
		t.Fatal("nil module verified")
	}
}

func TestSignCustomCode(t *testing.T) {
	v := testVendor(t)
	code := []byte("custom authenticated code module image")
	m, err := v.Sign(code)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Code) != string(code) {
		t.Fatal("custom code not preserved")
	}
	if err := Verify(v.Public(), m); err != nil {
		t.Fatal(err)
	}
}

func TestVendorDeterministic(t *testing.T) {
	a, _ := NewVendor(7, 1024)
	b, _ := NewVendor(7, 1024)
	if a.Public().N.Cmp(b.Public().N) != 0 {
		t.Fatal("same seed produced different vendor keys")
	}
}

func TestVerifyWithDigestMatchesVerify(t *testing.T) {
	v := testVendor(t)
	m, _ := v.Sign(nil)
	if err := VerifyWithDigest(v.Public(), m, sha1.Sum(m.Code)); err != nil {
		t.Fatalf("genuine module rejected via supplied digest: %v", err)
	}
}

// TestVerifyWithDigestRejectsTamperedCode: the supplied digest comes from a
// content-validated source, so tampering with the code in place shows up as
// a different digest — the memo cannot hit and live verification fails.
func TestVerifyWithDigestRejectsTamperedCode(t *testing.T) {
	v := testVendor(t)
	m, _ := v.Sign(nil)
	if err := Verify(v.Public(), m); err != nil { // prime the memo
		t.Fatal(err)
	}
	m.Code[0] ^= 1
	if err := VerifyWithDigest(v.Public(), m, sha1.Sum(m.Code)); err == nil {
		t.Fatal("tampered ACMod verified via supplied digest — the memo leaked across content")
	}
}

// TestVerifyWithDigestRejectsTamperedSignature: the signature digest is part
// of the memo key, so a primed memo does not vouch for a modified signature.
func TestVerifyWithDigestRejectsTamperedSignature(t *testing.T) {
	v := testVendor(t)
	m, _ := v.Sign(nil)
	if err := Verify(v.Public(), m); err != nil {
		t.Fatal(err)
	}
	m.Signature[0] ^= 1
	if err := VerifyWithDigest(v.Public(), m, sha1.Sum(m.Code)); err == nil {
		t.Fatal("tampered signature verified via supplied digest")
	}
}

func TestVerifyWithDigestNil(t *testing.T) {
	v := testVendor(t)
	if err := VerifyWithDigest(v.Public(), nil, [sha1.Size]byte{}); err == nil {
		t.Fatal("nil module verified")
	}
}
