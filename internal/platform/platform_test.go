package platform

import (
	"testing"

	"minimaltcb/internal/cpu"
)

func fast(p Profile) Profile {
	p.KeyBits = 1024
	return p
}

func TestAllMeasuredProfilesBuild(t *testing.T) {
	for _, p := range AllMeasured() {
		m, err := New(fast(p))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(m.CPUs) != p.NumCPUs {
			t.Fatalf("%s: %d CPUs", p.Name, len(m.CPUs))
		}
		if p.HasTPM != m.Chipset.HasTPM() {
			t.Fatalf("%s: TPM presence mismatch", p.Name)
		}
		if p.CPUParams.Vendor == cpu.Intel {
			if m.ACMod == nil || m.FusedKey == nil {
				t.Fatalf("%s: Intel machine without ACMod", p.Name)
			}
		} else if m.ACMod != nil {
			t.Fatalf("%s: AMD machine with ACMod", p.Name)
		}
	}
}

func TestProfileNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range AllMeasured() {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
	}
	if len(seen) != 5 {
		t.Fatalf("%d profiles, want the paper's 5 machines", len(seen))
	}
}

func TestRecommendedAddsSePCRs(t *testing.T) {
	p := Recommended(HPdc5750(), 8)
	m, err := New(fast(p))
	if err != nil {
		t.Fatal(err)
	}
	if m.TPM().NumSePCRs() != 8 {
		t.Fatalf("sePCRs %d", m.TPM().NumSePCRs())
	}
	if p.Name == HPdc5750().Name {
		t.Fatal("recommended profile not renamed")
	}
}

func TestStockProfilesHaveNoSePCRs(t *testing.T) {
	m, err := New(fast(HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	if m.TPM().NumSePCRs() != 0 {
		t.Fatal("stock 2007 TPM has sePCRs")
	}
}

func TestNewRejectsBadProfiles(t *testing.T) {
	p := HPdc5750()
	p.NumCPUs = 0
	if _, err := New(p); err == nil {
		t.Fatal("0-CPU profile built")
	}
	p = HPdc5750()
	p.BusTiming.HashDataPerKB = 0
	if _, err := New(p); err == nil {
		t.Fatal("invalid bus timing accepted")
	}
}

func TestLateLaunchDispatch(t *testing.T) {
	// AMD machine dispatches SKINIT; the wrong-vendor error would
	// surface if dispatch were broken.
	m, err := New(fast(HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	// Write a minimal SLB.
	img := []byte{8, 0, 4, 0, 1, 0, 0, 0} // len 8, entry 4, then a halt... opcode 1 = halt encoded big? encode properly below
	_ = img
	// Use the pal package via an integration-level test elsewhere; here
	// just confirm vendor dispatch errors are absent for the right CPU.
	if m.Profile.CPUParams.Vendor != cpu.AMD {
		t.Fatal("dc5750 should be AMD")
	}
	mi, err := New(fast(IntelTEP()))
	if err != nil {
		t.Fatal(err)
	}
	if mi.Profile.CPUParams.Vendor != cpu.Intel {
		t.Fatal("TEP should be Intel")
	}
}

func TestBootCPU(t *testing.T) {
	m, err := New(fast(TyanN3600R()))
	if err != nil {
		t.Fatal(err)
	}
	if m.BootCPU() != m.CPUs[0] {
		t.Fatal("BootCPU is not core 0")
	}
}
