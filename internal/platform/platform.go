// Package platform assembles complete simulated machines — CPUs, memory,
// chipset, LPC bus, TPM, and (on Intel) the ACMod — and defines the five
// hardware profiles the paper measures.
package platform

import (
	"crypto/rsa"
	"fmt"
	"time"

	"minimaltcb/internal/acmod"
	"minimaltcb/internal/chipset"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// Profile describes a machine configuration.
type Profile struct {
	// Name identifies the machine, matching the paper's test systems.
	Name string
	// CPUParams is the per-core timing model.
	CPUParams cpu.Params
	// NumCPUs is the core count.
	NumCPUs int
	// MemorySize is physical memory in bytes.
	MemorySize int
	// BusTiming is the LPC/TPM bus model.
	BusTiming lpc.Timing
	// TPM configures the TPM; HasTPM false models the Tyan n3600R.
	HasTPM     bool
	TPMProfile tpm.Profile
	// NumSePCRs provisions the proposed secure-execution PCRs; 0 models
	// stock 2007 hardware.
	NumSePCRs int
	// Seed drives all platform randomness; KeyBits the RSA modulus size
	// (0 = 2048).
	Seed    uint64
	KeyBits int
}

// Machine is an assembled platform.
type Machine struct {
	Profile Profile
	Clock   *sim.Clock
	Chipset *chipset.Chipset
	CPUs    []*cpu.CPU
	// ACMod and FusedKey are the Intel launch module and the chipset's
	// burned-in verification key (nil on AMD machines).
	ACMod    *acmod.Module
	FusedKey *rsa.PublicKey
}

// New assembles a machine from a profile.
func New(p Profile) (*Machine, error) {
	if p.NumCPUs < 1 {
		return nil, fmt.Errorf("platform: %q has %d CPUs", p.Name, p.NumCPUs)
	}
	if err := p.BusTiming.Validate(); err != nil {
		return nil, fmt.Errorf("platform: %q: %w", p.Name, err)
	}
	clock := sim.NewClock()
	m := mem.New(p.MemorySize)
	bus := lpc.NewBus(clock, p.BusTiming)

	var chip *tpm.TPM
	if p.HasTPM {
		var err error
		chip, err = tpm.New(clock, bus, tpm.Config{
			Profile:   p.TPMProfile,
			Seed:      p.Seed,
			KeyBits:   p.KeyBits,
			NumSePCRs: p.NumSePCRs,
		})
		if err != nil {
			return nil, fmt.Errorf("platform: %q: %w", p.Name, err)
		}
	}
	cs := chipset.New(clock, m, bus, chip)

	mach := &Machine{Profile: p, Clock: clock, Chipset: cs}
	for i := 0; i < p.NumCPUs; i++ {
		mach.CPUs = append(mach.CPUs, cpu.New(i, p.CPUParams, cs))
	}

	if p.CPUParams.Vendor == cpu.Intel {
		vendor, err := acmod.NewVendor(p.Seed, p.KeyBits)
		if err != nil {
			return nil, err
		}
		module, err := vendor.Sign(nil)
		if err != nil {
			return nil, err
		}
		mach.ACMod = module
		mach.FusedKey = vendor.Public()
	}
	return mach, nil
}

// TPM returns the machine's TPM (nil if none).
func (m *Machine) TPM() *tpm.TPM { return m.Chipset.TPM() }

// InstallFaults wires a fault-injection hook (internal/chaos) into the
// machine's TPM. A nil hook uninstalls; machines without a TPM ignore it.
func (m *Machine) InstallFaults(h tpm.FaultHook) {
	if t := m.TPM(); t != nil {
		t.SetFault(h)
	}
}

// BootCPU returns core 0.
func (m *Machine) BootCPU() *cpu.CPU { return m.CPUs[0] }

// LateLaunch performs the machine's native late launch (SKINIT on AMD,
// SENTER on Intel) of the SLB at base on core c.
func (m *Machine) LateLaunch(c *cpu.CPU, base uint32) (*cpu.LaunchResult, error) {
	if m.Profile.CPUParams.Vendor == cpu.Intel {
		return c.SENTER(base, m.ACMod, m.FusedKey)
	}
	return c.SKINIT(base)
}

// DefaultMemory is the memory size profiles use unless overridden: 64 MB is
// ample for PALs plus OS structures and keeps the page table small.
const DefaultMemory = 64 << 20

// intelTEPBus is the TEP's LPC timing: calibrated so the 10.3 KB ACMod
// transfer plus signature verification reproduces SENTER's 26.39 ms base.
func intelTEPBus() lpc.Timing {
	return lpc.Timing{
		HashStartEnd:    900 * time.Microsecond,
		HashDataPerKB:   2400 * time.Microsecond,
		CommandOverhead: 150 * time.Microsecond,
		BytesPerCommand: 4,
	}
}

// HPdc5750 is the paper's primary machine: 2.2 GHz AMD Athlon64 X2 with a
// Broadcom v1.2 TPM whose long wait cycles dominate SKINIT (Table 1 row 1,
// Figure 2).
func HPdc5750() Profile {
	return Profile{
		Name:       "HP dc5750 (AMD + Broadcom TPM)",
		CPUParams:  cpu.ParamsAMDdc5750(),
		NumCPUs:    2,
		MemorySize: DefaultMemory,
		BusTiming:  lpc.LongWait(),
		HasTPM:     true,
		TPMProfile: tpm.ProfileBroadcom(),
	}
}

// TyanN3600R is the TPM-less dual-Opteron server board that isolates
// SKINIT's bus transfer from TPM overhead (Table 1 row 2, Table 2 AMD).
func TyanN3600R() Profile {
	return Profile{
		Name:       "Tyan n3600R (AMD, no TPM)",
		CPUParams:  cpu.ParamsAMDTyan(),
		NumCPUs:    4,
		MemorySize: DefaultMemory,
		BusTiming:  lpc.FullSpeed(),
		HasTPM:     false,
	}
}

// IntelTEP is the MPC ClientPro Advantage 385 TXT Technology Enabling
// Platform: 2.66 GHz Core 2 Duo, Atmel TPM (Table 1 row 3, Table 2 Intel).
func IntelTEP() Profile {
	return Profile{
		Name:       "Intel TEP (Core 2 Duo + Atmel TPM)",
		CPUParams:  cpu.ParamsIntelTEP(),
		NumCPUs:    2,
		MemorySize: DefaultMemory,
		BusTiming:  intelTEPBus(),
		HasTPM:     true,
		TPMProfile: tpm.ProfileAtmelTEP(),
	}
}

// LenovoT60 is the laptop whose Atmel TPM appears in Figure 3.
func LenovoT60() Profile {
	return Profile{
		Name:       "Lenovo T60 (Atmel TPM)",
		CPUParams:  cpu.ParamsIntelTEP(), // Core Duo laptop; VM numbers unused
		NumCPUs:    2,
		MemorySize: DefaultMemory,
		BusTiming:  lpc.LongWait(),
		HasTPM:     true,
		TPMProfile: tpm.ProfileAtmelT60(),
	}
}

// AMDInfineonWS is the AMD workstation with the Infineon TPM of Figure 3.
func AMDInfineonWS() Profile {
	return Profile{
		Name:       "AMD workstation (Infineon TPM)",
		CPUParams:  cpu.ParamsAMDdc5750(),
		NumCPUs:    2,
		MemorySize: DefaultMemory,
		BusTiming:  lpc.LongWait(),
		HasTPM:     true,
		TPMProfile: tpm.ProfileInfineon(),
	}
}

// Recommended returns a machine profile with the paper's §5 hardware
// recommendations enabled on top of a base profile: sePCRs in the TPM (one
// per desired concurrent PAL) and, implicitly, the SLAUNCH instruction set
// implemented by internal/sksm.
func Recommended(base Profile, sePCRs int) Profile {
	base.Name = base.Name + " + recommendations"
	base.NumSePCRs = sePCRs
	return base
}

// AllMeasured returns the five machines the paper benchmarks.
func AllMeasured() []Profile {
	return []Profile{HPdc5750(), TyanN3600R(), IntelTEP(), LenovoT60(), AMDInfineonWS()}
}
