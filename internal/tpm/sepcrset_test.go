package tpm

import (
	"errors"
	"testing"
)

func TestAllocateSePCRSet(t *testing.T) {
	chip := sePCRTPM(t, 4)
	meas := Measure([]byte("multicore pal"))
	handles, err := chip.AllocateSePCRSet(0, meas, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 3 {
		t.Fatalf("%d handles", len(handles))
	}
	// First register carries the PAL measurement; the rest start zeroed.
	v0, _ := chip.SePCRValue(handles[0])
	if v0 != chain(Digest{}, meas) {
		t.Fatal("index register missing PAL measurement")
	}
	for _, h := range handles[1:] {
		v, _ := chip.SePCRValue(h)
		if v != (Digest{}) {
			t.Fatalf("member %d not reset", h)
		}
		st, _ := chip.SePCRStateOf(h)
		if st != SePCRExclusive {
			t.Fatalf("member %d state %v", h, st)
		}
	}
}

func TestAllocateSePCRSetShortfallRollsBack(t *testing.T) {
	chip := sePCRTPM(t, 2)
	if _, err := chip.AllocateSePCRSet(0, Digest{}, 3); !errors.Is(err, ErrNoSePCR) {
		t.Fatalf("oversized set: %v", err)
	}
	// Nothing must have been consumed.
	if _, err := chip.AllocateSePCRSet(0, Digest{}, 2); err != nil {
		t.Fatalf("registers leaked by failed set alloc: %v", err)
	}
	if _, err := chip.AllocateSePCRSet(0, Digest{}, 0); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestSePCRSetIndividualExtend(t *testing.T) {
	chip := sePCRTPM(t, 3)
	handles, _ := chip.AllocateSePCRSet(1, Measure([]byte("pal")), 2)
	// Individual members extend independently (§6: extend indexes
	// individual registers).
	m := Measure([]byte("worker output"))
	if _, err := chip.SePCRExtend(handles[1], 1, m); err != nil {
		t.Fatal(err)
	}
	v0, _ := chip.SePCRValue(handles[0])
	v1, _ := chip.SePCRValue(handles[1])
	if v0 == v1 {
		t.Fatal("extend of one member affected another")
	}
	// Owner enforcement still applies per member.
	if _, err := chip.SePCRExtend(handles[1], 0, m); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("foreign extend on set member: %v", err)
	}
}

func TestReleaseSePCRSetAllOrNothing(t *testing.T) {
	chip := sePCRTPM(t, 4)
	setA, _ := chip.AllocateSePCRSet(0, Digest{}, 2)
	setB, _ := chip.AllocateSePCRSet(1, Digest{}, 1)
	// Mixed-ownership release refuses and changes nothing.
	mixed := append(append([]int(nil), setA...), setB...)
	if err := chip.ReleaseSePCRSet(mixed, 0); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("mixed release: %v", err)
	}
	for _, h := range mixed {
		st, _ := chip.SePCRStateOf(h)
		if st != SePCRExclusive {
			t.Fatalf("register %d transitioned on failed release", h)
		}
	}
	// Proper release moves the whole set to Quote.
	if err := chip.ReleaseSePCRSet(setA, 0); err != nil {
		t.Fatal(err)
	}
	for _, h := range setA {
		st, _ := chip.SePCRStateOf(h)
		if st != SePCRQuote {
			t.Fatalf("register %d state %v", h, st)
		}
	}
}

func TestQuoteSePCRSetSubset(t *testing.T) {
	chip := sePCRTPM(t, 4)
	meas := Measure([]byte("pal"))
	handles, _ := chip.AllocateSePCRSet(0, meas, 3)
	chip.SePCRExtend(handles[1], 0, Measure([]byte("input")))
	if err := chip.ReleaseSePCRSet(handles, 0); err != nil {
		t.Fatal(err)
	}

	// Quote a two-register subset (§6: quote indexes a subset).
	subset := handles[:2]
	q, err := chip.QuoteSePCRSet(subset, []byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(chip.AIKPublic(), q); err != nil {
		t.Fatalf("set quote rejected: %v", err)
	}
	// The composite must be reconstructible by a verifier from the
	// handles and the replayed values.
	v0 := chain(Digest{}, meas)
	v1 := chain(Digest{}, Measure([]byte("input")))
	want := CompositeDigest(Selection{subset[0], subset[1]}, []Digest{v0, v1})
	if q.Composite != want {
		t.Fatal("set quote composite not reconstructible")
	}
	// Quoted registers freed; the unquoted member stays quotable.
	for _, h := range subset {
		st, _ := chip.SePCRStateOf(h)
		if st != SePCRFree {
			t.Fatalf("quoted register %d state %v", h, st)
		}
	}
	st, _ := chip.SePCRStateOf(handles[2])
	if st != SePCRQuote {
		t.Fatalf("unquoted member state %v", st)
	}
	if _, err := chip.QuoteSePCRSet(handles[2:], []byte("n2")); err != nil {
		t.Fatalf("late quote of remaining member: %v", err)
	}
}

func TestQuoteSePCRSetErrors(t *testing.T) {
	chip := sePCRTPM(t, 2)
	if _, err := chip.QuoteSePCRSet(nil, nil); err == nil {
		t.Fatal("empty subset quoted")
	}
	if _, err := chip.QuoteSePCRSet([]int{9}, nil); !errors.Is(err, ErrSePCRHandle) {
		t.Fatalf("bad handle: %v", err)
	}
	handles, _ := chip.AllocateSePCRSet(0, Digest{}, 1)
	if _, err := chip.QuoteSePCRSet(handles, nil); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("quote of Exclusive set: %v", err)
	}
}
