package tpm

import (
	"crypto/rsa"
	"fmt"
)

// Quote is the TPM's signed statement about platform state: an RSA
// signature by the AIK over the composite digest of the selected PCRs and a
// verifier-chosen nonce (§2.1.1). The same structure carries sePCR quotes,
// with the handle recorded so the verifier knows which register was signed.
type Quote struct {
	// Selection lists the static/dynamic PCR indices covered (nil for an
	// sePCR quote).
	Selection Selection
	// SePCRHandle is the sePCR covered, or -1 for a PCR quote.
	SePCRHandle int
	// Composite is the digest the signature covers.
	Composite Digest
	// Nonce is the anti-replay challenge supplied by the verifier.
	Nonce []byte
	// Signature is the RSA-PKCS#1v1.5-SHA1 signature by the AIK.
	Signature []byte
}

// quoteDigest computes the signed message: SHA1("QUOT" || composite || nonce),
// assembled in a pooled scratch buffer.
func quoteDigest(composite Digest, nonce []byte) Digest {
	bp := getScratch()
	defer putScratch(bp)
	b := append(*bp, "QUOT"...)
	b = append(b, composite[:]...)
	b = append(b, nonce...)
	return Measure(b)
}

// QuoteCommand executes TPM_Quote over a PCR selection. The private-key RSA
// signature dominates the latency (§4.2).
func (t *TPM) QuoteCommand(sel Selection, nonce []byte) (*Quote, error) {
	composite, err := t.Composite(sel)
	if err != nil {
		return nil, err
	}
	sp := t.cmdSpan("TPM_Quote").Attr("mode", "pcr")
	sig, err := memoSignPKCS1v15(t.aik, quoteDigest(composite, nonce))
	if err != nil {
		err = fmt.Errorf("tpm: quote signature: %w", err)
		t.endCmd(sp, err)
		return nil, err
	}
	t.busCommand(40+len(nonce), len(sig)+40)
	t.charge(t.profile.QuoteLatency, t.profile.Jitter)
	t.endCmd(sp, nil)
	return &Quote{
		Selection:   append(Selection(nil), sel...),
		SePCRHandle: -1,
		Composite:   composite,
		Nonce:       append([]byte(nil), nonce...),
		Signature:   sig,
	}, nil
}

// VerifyQuote checks a quote's signature against an AIK public key. It does
// not charge virtual time: verification happens on the verifier's machine,
// outside the measured platform. Successful verifications are memoized
// (verification is a pure function of key, message and signature).
func VerifyQuote(aik *rsa.PublicKey, q *Quote) error {
	if q == nil {
		return fmt.Errorf("tpm: nil quote")
	}
	return memoVerifyPKCS1v15(aik, quoteDigest(q.Composite, q.Nonce), q.Signature)
}
