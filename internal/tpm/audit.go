package tpm

// This file is the chip's side of the tamper-evident audit layer
// (internal/audit). Two pieces live here, deliberately small:
//
//   - AuditHook, an observer the embedding stack installs to turn sePCR
//     state transitions and sealing-storage decisions into audit events.
//     The hook carries no tenant or trace identity — the chip does not
//     know it; sksm.Manager implements the hook and stamps the identity of
//     the PAL it is currently running.
//
//   - SignAuditHead, the AIK signing oracle for audit tree heads. The
//     audit log's only trusted ingredient is this signature; everything
//     else (Merkle tree, segments, verifier) stays outside the modeled TCB.
//
// The package intentionally does not import internal/audit: the hook is a
// local interface and the signature is over caller-supplied bytes, keeping
// tpm at the bottom of the dependency graph.

// AuditHook observes trust-relevant TPM state transitions. op is one of the
// event-type strings shared with internal/audit ("sepcr_alloc", "seal",
// "late_launch", ...); handle is the sePCR involved (-1 for whole-chip
// events); value is the register or composite digest after the transition.
// The hook is called with the chip's embedding lock held, same as the trace
// scope, so implementations must not call back into the TPM.
type AuditHook interface {
	TPMAuditEvent(op string, handle int, value Digest)
}

// SetAuditHook installs (or with nil removes) the chip's audit observer.
// The nil default costs one pointer check per audited command, mirroring
// the FaultHook discipline.
func (t *TPM) SetAuditHook(h AuditHook) { t.audit = h }

// auditEvent reports one transition to the installed hook, if any.
func (t *TPM) auditEvent(op string, handle int, value Digest) {
	if t.audit == nil {
		return
	}
	t.audit.TPMAuditEvent(op, handle, value)
}

// SignAuditHead signs a serialized audit tree head with the platform AIK.
// The digest is the chip's native hash (SHA-1, like quote signatures);
// cross-protocol confusion with quotes is impossible because quote digests
// commit to a "QUOT" prefix while head messages begin with the audit
// layer's own domain string. Signing is memoized alongside quote
// signatures, so re-signing an unchanged head is free.
func (t *TPM) SignAuditHead(msg []byte) ([]byte, error) {
	return memoSignPKCS1v15(t.aik, Measure(msg))
}
