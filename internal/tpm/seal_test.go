package tpm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	chip.Extend(FirstDynamicPCR, Measure([]byte("pal")))
	secret := []byte("the CA's private signing key")
	blob, err := chip.Seal(Selection{FirstDynamicPCR}, secret)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chip.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("unsealed %q, want %q", got, secret)
	}
	if chip.Unseals() != 1 {
		t.Fatalf("Unseals() = %d", chip.Unseals())
	}
}

func TestUnsealFailsAfterPCRChange(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	chip.Extend(FirstDynamicPCR, Measure([]byte("pal")))
	blob, err := chip.Seal(Selection{FirstDynamicPCR}, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Different software extends the PCR: policy must no longer match.
	chip.Extend(FirstDynamicPCR, Measure([]byte("malware")))
	if _, err := chip.Unseal(blob); !errors.Is(err, ErrPCRMismatch) {
		t.Fatalf("unseal under wrong PCRs: %v", err)
	}
}

func TestUnsealFailsForDifferentPAL(t *testing.T) {
	chip, _, bus := testTPM(t, Config{})
	bus.SetLocality(4)
	// PAL A launches and seals.
	chip.HashStart()
	chip.HashData([]byte("PAL A code"))
	chip.HashEnd()
	blob, err := chip.Seal(Selection{FirstDynamicPCR}, []byte("A's secret"))
	if err != nil {
		t.Fatal(err)
	}
	// PAL B launches; PCR17 now holds B's measurement.
	chip.HashStart()
	chip.HashData([]byte("PAL B code"))
	chip.HashEnd()
	if _, err := chip.Unseal(blob); !errors.Is(err, ErrPCRMismatch) {
		t.Fatalf("PAL B unsealed A's state: %v", err)
	}
	// PAL A relaunches: unseal works again.
	chip.HashStart()
	chip.HashData([]byte("PAL A code"))
	chip.HashEnd()
	got, err := chip.Unseal(blob)
	if err != nil || string(got) != "A's secret" {
		t.Fatalf("PAL A re-unseal: %q, %v", got, err)
	}
}

func TestSealEmptySelection(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	blob, err := chip.Seal(nil, []byte("open secret"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := chip.Unseal(blob)
	if err != nil || string(got) != "open secret" {
		t.Fatalf("empty-selection roundtrip: %q, %v", got, err)
	}
}

func TestSealLargePayload(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	big := make([]byte, 100_000) // far beyond one RSA block: hybrid envelope
	for i := range big {
		big[i] = byte(i * 7)
	}
	blob, err := chip.Seal(Selection{0}, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chip.Unseal(blob)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large payload corrupted (%v)", err)
	}
}

func TestUnsealRejectsTamperedBlob(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	blob, err := chip.Seal(Selection{0}, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one ciphertext byte (the tail of the blob).
	tampered := append([]byte(nil), blob...)
	tampered[len(tampered)-1] ^= 0x01
	if _, err := chip.Unseal(tampered); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("tampered ciphertext: %v", err)
	}
	// Corrupt the release digest: the policy check must fail first.
	tampered = append([]byte(nil), blob...)
	tampered[7] ^= 0xff // inside release digest (mode 0, nsel 1, sel byte)
	if _, err := chip.Unseal(tampered); err == nil {
		t.Fatal("blob with corrupted policy unsealed")
	}
}

func TestUnsealMalformedBlobs(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	bad := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE definitely not a blob"),
		[]byte("SEAL\x00\x30"), // claims 48 selection bytes, has none
	}
	for _, b := range bad {
		if _, err := chip.Unseal(b); !errors.Is(err, ErrBadBlob) {
			t.Fatalf("Unseal(%q): %v, want ErrBadBlob", b, err)
		}
	}
}

func TestUnsealWrongTPMFails(t *testing.T) {
	a, _, _ := testTPM(t, Config{Seed: 1})
	b, _, _ := testTPM(t, Config{Seed: 2})
	blob, err := a.Seal(Selection{0}, []byte("bound to A"))
	if err != nil {
		t.Fatal(err)
	}
	// B has a different SRK: decryption must fail even though B's PCR 0
	// holds the same (zero) value.
	if _, err := b.Unseal(blob); err == nil {
		t.Fatal("foreign TPM unsealed the blob")
	}
}

func TestSealedBlobsDiffer(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	b1, _ := chip.Seal(Selection{0}, []byte("same data"))
	b2, _ := chip.Seal(Selection{0}, []byte("same data"))
	if bytes.Equal(b1, b2) {
		t.Fatal("two seals of identical data produced identical blobs (nonce reuse)")
	}
}

func TestSealChargesPayloadDependentTime(t *testing.T) {
	clock, profile := newClockProfile()
	chip := newProfiledTPM(t, clock, profile)
	start := clock.Now()
	chip.Seal(Selection{0}, make([]byte, 1024))
	small := clock.Now() - start
	start = clock.Now()
	chip.Seal(Selection{0}, make([]byte, 64*1024))
	large := clock.Now() - start
	if large <= small {
		t.Fatalf("64KB seal (%v) not slower than 1KB seal (%v)", large, small)
	}
}

// Property: seal/unseal round-trips arbitrary payloads under any selection
// of valid PCR indices, as long as the PCRs are untouched in between.
func TestSealRoundTripProperty(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	f := func(data []byte, rawSel []uint8) bool {
		sel := make(Selection, 0, len(rawSel))
		for _, s := range rawSel {
			sel = append(sel, int(s)%NumPCRs)
		}
		blob, err := chip.Seal(sel, data)
		if err != nil {
			return false
		}
		got, err := chip.Unseal(blob)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
