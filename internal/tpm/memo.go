package tpm

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rsa"
	"crypto/sha1"
	"encoding/binary"
	"io"
	"sync"
	"unsafe"
)

// This file implements the measurement and crypto memoization layer.
//
// Two observations make it sound. First, the multi-tenant service relaunches
// the *same* PAL image over and over (palsvc's image cache hands every job
// the identical Image.Bytes slice), so the SHA-1 over the image is a pure
// function of a slice that never changes — it can be computed once and
// replayed, while the TPM still charges the profile's virtual hash latency
// every launch. Second, all TPM-internal randomness comes from a seeded
// deterministic RNG, so experiment sweeps and benchmark iterations replay
// byte-identical RSA operations; the modular exponentiation is a pure
// function of (key, input) and its result can be cached without changing a
// single output bit. Virtual-clock charges are applied by the callers
// exactly as before in both the hit and miss cases — memoization removes
// *simulator* cost only (see docs/PERFORMANCE.md).
//
// All caches are bounded: above a fixed entry count they are emptied, so a
// long-lived service with ever-fresh nonces degrades to cache misses rather
// than unbounded growth.

// memoLimit bounds each memo table; crossing it empties the table.
const memoLimit = 4096

// ---- Measurement memoization -----------------------------------------

// measureKey identifies a byte slice by backing-array identity. Holding the
// data pointer in the key pins the backing array, so an address can never be
// recycled for different bytes while its entry is live.
type measureKey struct {
	ptr *byte
	n   int
}

var measureMemo struct {
	sync.Mutex
	m map[measureKey]Digest
}

// MeasureMemoized hashes b into a measurement, returning a cached digest
// when the identical slice (same backing array and length) was measured
// before. hit reports whether the cache supplied the digest, so callers can
// expose it on trace spans (measure_cache=hit|miss).
//
// Only use this with slices that are never mutated after first measurement
// (PAL image bytes); the cache keys on identity, not content, and would
// return stale digests for a mutated slice. Mutable or transient buffers
// must use Measure.
func MeasureMemoized(b []byte) (d Digest, hit bool) {
	if len(b) == 0 {
		return Measure(b), false
	}
	k := measureKey{ptr: unsafe.SliceData(b), n: len(b)}
	measureMemo.Lock()
	d, hit = measureMemo.m[k]
	measureMemo.Unlock()
	if hit {
		return d, true
	}
	d = Measure(b)
	measureMemo.Lock()
	if measureMemo.m == nil || len(measureMemo.m) >= memoLimit {
		measureMemo.m = make(map[measureKey]Digest)
	}
	measureMemo.m[k] = d
	measureMemo.Unlock()
	return d, false
}

// ---- Deterministic RSA memoization -----------------------------------

// cryptoKey identifies one deterministic private/public-key operation: the
// op code, the key (by public-key fingerprint), and a SHA-1 over the
// operation's inputs.
//
// The key field used to be uintptr(unsafe.Pointer(key)). That was unsound
// once AIKs became re-mintable (PR9's per-epoch re-mint): after a key is
// garbage-collected its address can be recycled for a *different* key, and
// the stale cache entry would alias the new key's operations — a signature
// minted under key A verifying "successfully" under unrelated key B. A
// fingerprint of the public material can't be recycled.
type cryptoKey struct {
	op  byte
	key Digest
	sum Digest
}

// keyFingerprint condenses an RSA public key into a cache identity. Both
// halves of a key pair share the fingerprint; the op code keeps private-
// and public-key operations from colliding.
func keyFingerprint(pub *rsa.PublicKey) Digest {
	var ebuf [8]byte
	binary.BigEndian.PutUint64(ebuf[:], uint64(pub.E))
	return sumParts([]byte("RSAPUB"), pub.N.Bytes(), ebuf[:])
}

const (
	opOAEPDecrypt = iota
	opOAEPEncrypt
	opSign
	opVerify
)

var cryptoMemo struct {
	sync.Mutex
	m map[cryptoKey][]byte
}

func cryptoLookup(k cryptoKey) ([]byte, bool) {
	cryptoMemo.Lock()
	v, ok := cryptoMemo.m[k]
	cryptoMemo.Unlock()
	return v, ok
}

func cryptoStore(k cryptoKey, v []byte) {
	cryptoMemo.Lock()
	if cryptoMemo.m == nil || len(cryptoMemo.m) >= memoLimit {
		cryptoMemo.m = make(map[cryptoKey][]byte)
	}
	cryptoMemo.m[k] = v
	cryptoMemo.Unlock()
}

// sumParts hashes the concatenation of the given parts.
func sumParts(parts ...[]byte) Digest {
	h := sha1.New()
	for _, p := range parts {
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// memoDecryptOAEP is rsa.DecryptOAEP with result caching. OAEP decryption
// is a pure function of (key, ciphertext, label).
func memoDecryptOAEP(priv *rsa.PrivateKey, ciphertext, label []byte) ([]byte, error) {
	k := cryptoKey{op: opOAEPDecrypt, key: keyFingerprint(&priv.PublicKey), sum: sumParts(ciphertext, label)}
	if v, ok := cryptoLookup(k); ok {
		return v, nil
	}
	pt, err := rsa.DecryptOAEP(sha1.New(), nil, priv, ciphertext, label)
	if err != nil {
		return nil, err
	}
	cryptoStore(k, pt)
	return pt, nil
}

// detStream is a deterministic byte stream expanded from a seed by SHA-1 in
// counter mode. memoEncryptOAEP feeds it to rsa.EncryptOAEP so the OAEP
// padding is a pure function of the pre-drawn seed, whatever read pattern
// the rsa package uses.
type detStream struct {
	seed Digest
	buf  []byte
	ctr  uint32
}

func (s *detStream) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(s.buf) == 0 {
			block := sumParts(s.seed[:], []byte{byte(s.ctr), byte(s.ctr >> 8), byte(s.ctr >> 16), byte(s.ctr >> 24)})
			s.ctr++
			s.buf = block[:]
		}
		c := copy(p, s.buf)
		s.buf = s.buf[c:]
		p = p[c:]
	}
	return n, nil
}

var _ io.Reader = (*detStream)(nil)

// memoEncryptOAEP is rsa.EncryptOAEP with the randomness made explicit: the
// OAEP seed entropy is always drawn from rng first (one Digest worth), so
// the RNG stream advances identically whether the result comes from the
// cache or a live encryption, and the ciphertext is a pure function of
// (key, seed, plaintext, label).
func memoEncryptOAEP(rng io.Reader, pub *rsa.PublicKey, plaintext, label []byte) ([]byte, error) {
	var seed Digest
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, err
	}
	k := cryptoKey{op: opOAEPEncrypt, key: keyFingerprint(pub), sum: sumParts(seed[:], plaintext, label)}
	if v, ok := cryptoLookup(k); ok {
		return v, nil
	}
	ct, err := rsa.EncryptOAEP(sha1.New(), &detStream{seed: seed}, pub, plaintext, label)
	if err != nil {
		return nil, err
	}
	cryptoStore(k, ct)
	return ct, nil
}

// memoSignPKCS1v15 is rsa.SignPKCS1v15 with result caching; PKCS#1 v1.5
// signatures are deterministic.
func memoSignPKCS1v15(priv *rsa.PrivateKey, digest Digest) ([]byte, error) {
	k := cryptoKey{op: opSign, key: keyFingerprint(&priv.PublicKey), sum: digest}
	if v, ok := cryptoLookup(k); ok {
		return v, nil
	}
	sig, err := rsa.SignPKCS1v15(nil, priv, crypto.SHA1, digest[:])
	if err != nil {
		return nil, err
	}
	cryptoStore(k, sig)
	return sig, nil
}

// memoVerifyPKCS1v15 is rsa.VerifyPKCS1v15 with success caching (failures
// are not cached; they carry the error detail and are off the hot path).
func memoVerifyPKCS1v15(pub *rsa.PublicKey, digest Digest, sig []byte) error {
	k := cryptoKey{op: opVerify, key: keyFingerprint(pub), sum: sumParts(digest[:], sig)}
	if _, ok := cryptoLookup(k); ok {
		return nil
	}
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA1, digest[:], sig); err != nil {
		return err
	}
	cryptoStore(k, nil)
	return nil
}

// ---- AEAD and scratch pooling ----------------------------------------

// aeadMemo caches the expanded AES-GCM state per 256-bit key; the seeded
// RNG replays the same session keys across deterministic runs, and GCM
// instances are stateless and safe for concurrent use.
var aeadMemo struct {
	sync.Mutex
	m map[[32]byte]cipher.AEAD
}

func aeadFor(key [32]byte) (cipher.AEAD, error) {
	aeadMemo.Lock()
	g, ok := aeadMemo.m[key]
	aeadMemo.Unlock()
	if ok {
		return g, nil
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	g, err = cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	aeadMemo.Lock()
	if aeadMemo.m == nil || len(aeadMemo.m) >= memoLimit {
		aeadMemo.m = make(map[[32]byte]cipher.AEAD)
	}
	aeadMemo.m[key] = g
	aeadMemo.Unlock()
	return g, nil
}

// scratchPool recycles small append buffers used for AAD construction and
// quote messages; the contents never outlive a single TPM command.
var scratchPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func getScratch() *[]byte  { return scratchPool.Get().(*[]byte) }
func putScratch(b *[]byte) { *b = (*b)[:0]; scratchPool.Put(b) }

// hashBufPool recycles the TPM_HASH_DATA accumulation buffer across
// HashStart/HashEnd sequences and across TPM instances; an SLB is at most
// 64 KB, so steady state holds one buffer per concurrent launch.
var hashBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}
