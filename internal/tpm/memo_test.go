package tpm

import (
	"testing"
)

func TestMeasureMemoizedMatchesMeasure(t *testing.T) {
	img := []byte("some PAL image bytes")
	want := Measure(img)

	d, hit := MeasureMemoized(img)
	if d != want {
		t.Fatalf("first measurement %x, want %x", d, want)
	}
	if hit {
		t.Fatal("first measurement of a fresh slice reported a cache hit")
	}
	d, hit = MeasureMemoized(img)
	if d != want {
		t.Fatalf("memoized measurement %x, want %x", d, want)
	}
	if !hit {
		t.Fatal("second measurement of the same slice missed the cache")
	}

	// A distinct slice with identical content is a different identity: the
	// cache keys on the backing array, so it must miss (and still hash
	// correctly).
	clone := append([]byte(nil), img...)
	d, hit = MeasureMemoized(clone)
	if d != want {
		t.Fatalf("clone measurement %x, want %x", d, want)
	}
	if hit {
		t.Fatal("distinct backing array reported a cache hit")
	}
}

func TestMeasureMemoizedEmptySlice(t *testing.T) {
	d, hit := MeasureMemoized(nil)
	if hit {
		t.Fatal("empty slice reported a hit")
	}
	if d != Measure(nil) {
		t.Fatal("empty-slice digest wrong")
	}
}

// TestMeasureMemoizedSteadyStateAllocs pins the launch path's claim: once
// an image has been measured, re-measuring it costs zero allocations.
func TestMeasureMemoizedSteadyStateAllocs(t *testing.T) {
	img := make([]byte, 4096)
	for i := range img {
		img[i] = byte(i * 7)
	}
	MeasureMemoized(img) // warm the cache entry
	allocs := testing.AllocsPerRun(200, func() {
		if _, hit := MeasureMemoized(img); !hit {
			t.Fatal("steady-state measurement missed the cache")
		}
	})
	if allocs != 0 {
		t.Fatalf("memoized Measure allocates %v allocs/op, want 0", allocs)
	}
}
