package tpm

import (
	"crypto/rsa"
	"testing"

	"minimaltcb/internal/sim"
)

func TestMeasureMemoizedMatchesMeasure(t *testing.T) {
	img := []byte("some PAL image bytes")
	want := Measure(img)

	d, hit := MeasureMemoized(img)
	if d != want {
		t.Fatalf("first measurement %x, want %x", d, want)
	}
	if hit {
		t.Fatal("first measurement of a fresh slice reported a cache hit")
	}
	d, hit = MeasureMemoized(img)
	if d != want {
		t.Fatalf("memoized measurement %x, want %x", d, want)
	}
	if !hit {
		t.Fatal("second measurement of the same slice missed the cache")
	}

	// A distinct slice with identical content is a different identity: the
	// cache keys on the backing array, so it must miss (and still hash
	// correctly).
	clone := append([]byte(nil), img...)
	d, hit = MeasureMemoized(clone)
	if d != want {
		t.Fatalf("clone measurement %x, want %x", d, want)
	}
	if hit {
		t.Fatal("distinct backing array reported a cache hit")
	}
}

func TestMeasureMemoizedEmptySlice(t *testing.T) {
	d, hit := MeasureMemoized(nil)
	if hit {
		t.Fatal("empty slice reported a hit")
	}
	if d != Measure(nil) {
		t.Fatal("empty-slice digest wrong")
	}
}

// TestMeasureMemoizedSteadyStateAllocs pins the launch path's claim: once
// an image has been measured, re-measuring it costs zero allocations.
func TestMeasureMemoizedSteadyStateAllocs(t *testing.T) {
	img := make([]byte, 4096)
	for i := range img {
		img[i] = byte(i * 7)
	}
	MeasureMemoized(img) // warm the cache entry
	allocs := testing.AllocsPerRun(200, func() {
		if _, hit := MeasureMemoized(img); !hit {
			t.Fatal("steady-state measurement missed the cache")
		}
	})
	if allocs != 0 {
		t.Fatalf("memoized Measure allocates %v allocs/op, want 0", allocs)
	}
}

// TestCryptoMemoNoCrossKeyAliasing is the regression test for the
// pointer-keyed cryptoKey bug: with per-epoch AIK re-minting, a freed key's
// address could be recycled for a different key and alias its cached
// signature/verify results. The cache must key on public material, so two
// distinct AIKs can never share entries — even with the cache fully warm.
func TestCryptoMemoNoCrossKeyAliasing(t *testing.T) {
	mint := func(seed uint64) *rsa.PrivateKey {
		k, err := rsa.GenerateKey(sim.NewRNG(seed), 1024)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	k1, k2 := mint(0x10a1), mint(0x10a2)
	if keyFingerprint(&k1.PublicKey) == keyFingerprint(&k2.PublicKey) {
		t.Fatal("distinct keys produced the same fingerprint")
	}

	digest := Measure([]byte("cross-key aliasing probe"))
	sig1, err := memoSignPKCS1v15(k1, digest)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every cache entry the old pointer key could have aliased: k1's
	// verify success and k2's own sign result over the same digest.
	if err := memoVerifyPKCS1v15(&k1.PublicKey, digest, sig1); err != nil {
		t.Fatalf("genuine verify failed: %v", err)
	}
	sig2, err := memoSignPKCS1v15(k2, digest)
	if err != nil {
		t.Fatal(err)
	}
	if string(sig1) == string(sig2) {
		t.Fatal("two keys signed the same digest identically")
	}
	// The poison case: k1's signature presented under k2's public key must
	// fail even though a success for (digest, sig1) is cached — under the
	// old scheme a recycled address made exactly this return nil.
	if err := memoVerifyPKCS1v15(&k2.PublicKey, digest, sig1); err == nil {
		t.Fatal("cross-key verification hit another key's cached success")
	}

	// And fingerprint identity is about public material, not object
	// identity: a distinct copy of k1 must share its cache entries.
	k1copy := *k1
	sigCopy, err := memoSignPKCS1v15(&k1copy, digest)
	if err != nil {
		t.Fatal(err)
	}
	if string(sigCopy) != string(sig1) {
		t.Fatal("copied key produced a different signature")
	}
}
