package tpm

import (
	"testing"
	"time"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/sim"
)

// newClockProfile returns a fresh clock and a synthetic profile with
// distinct, jitter-free latencies for charge-accounting tests.
func newClockProfile() (*sim.Clock, Profile) {
	return sim.NewClock(), Profile{
		Name:          "synthetic",
		ExtendLatency: 10 * time.Millisecond,
		ReadLatency:   time.Millisecond,
		SealBase:      20 * time.Millisecond,
		SealPerKB:     5 * time.Millisecond,
		UnsealLatency: 400 * time.Millisecond,
		QuoteLatency:  300 * time.Millisecond,
		RandomBase:    2 * time.Millisecond,
		RandomPerByte: time.Microsecond,
	}
}

func newProfiledTPM(t *testing.T, clock *sim.Clock, p Profile) *TPM {
	t.Helper()
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := New(clock, bus, Config{KeyBits: 1024, Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}
