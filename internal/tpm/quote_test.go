package tpm

import (
	"testing"
)

func TestQuoteVerifies(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	chip.Extend(FirstDynamicPCR, Measure([]byte("pal code")))
	nonce := []byte("verifier challenge 123")
	q, err := chip.QuoteCommand(Selection{FirstDynamicPCR}, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(chip.AIKPublic(), q); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
	if q.SePCRHandle != -1 {
		t.Fatalf("PCR quote has sePCR handle %d", q.SePCRHandle)
	}
	composite, _ := chip.Composite(Selection{FirstDynamicPCR})
	if q.Composite != composite {
		t.Fatal("quote composite differs from live composite")
	}
}

func TestQuoteRejectsTampering(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	q, err := chip.QuoteCommand(Selection{0, FirstDynamicPCR}, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	// Tampered composite.
	bad := *q
	bad.Composite[0] ^= 1
	if err := VerifyQuote(chip.AIKPublic(), &bad); err == nil {
		t.Fatal("quote with modified composite verified")
	}
	// Tampered nonce (replay with a different challenge).
	bad = *q
	bad.Nonce = []byte("other nonce")
	if err := VerifyQuote(chip.AIKPublic(), &bad); err == nil {
		t.Fatal("quote with modified nonce verified")
	}
	// Tampered signature.
	bad = *q
	bad.Signature = append([]byte(nil), q.Signature...)
	bad.Signature[0] ^= 1
	if err := VerifyQuote(chip.AIKPublic(), &bad); err == nil {
		t.Fatal("quote with modified signature verified")
	}
}

func TestQuoteWrongAIKFails(t *testing.T) {
	a, _, _ := testTPM(t, Config{Seed: 1})
	b, _, _ := testTPM(t, Config{Seed: 2})
	q, err := a.QuoteCommand(Selection{0}, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(b.AIKPublic(), q); err == nil {
		t.Fatal("quote verified under a different TPM's AIK")
	}
}

func TestQuoteBadSelection(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	if _, err := chip.QuoteCommand(Selection{NumPCRs + 1}, nil); err == nil {
		t.Fatal("quote over invalid PCR accepted")
	}
}

func TestVerifyNilQuote(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	if err := VerifyQuote(chip.AIKPublic(), nil); err == nil {
		t.Fatal("nil quote verified")
	}
}

func TestQuoteDistinguishesRebootFromDynamicReset(t *testing.T) {
	chip, _, bus := testTPM(t, Config{})
	// After boot, PCR17 is -1: quote proves no late launch happened.
	qBoot, err := chip.QuoteCommand(Selection{FirstDynamicPCR}, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	// After a late launch, PCR17 holds the PAL measurement chain.
	bus.SetLocality(4)
	chip.HashStart()
	chip.HashData([]byte("pal"))
	chip.HashEnd()
	qLaunch, err := chip.QuoteCommand(Selection{FirstDynamicPCR}, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if qBoot.Composite == qLaunch.Composite {
		t.Fatal("verifier cannot distinguish reboot from late launch")
	}
}
