package tpm

import (
	"crypto/sha1"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/sim"
)

// testTPM builds a functional TPM with zero-latency profile and small keys.
func testTPM(t *testing.T, cfg Config) (*TPM, *sim.Clock, *lpc.Bus) {
	t.Helper()
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 1024
	}
	clock := sim.NewClock()
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := New(clock, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return chip, clock, bus
}

func TestBootPCRValues(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	for i := 0; i < FirstDynamicPCR; i++ {
		v, err := chip.PCRValue(i)
		if err != nil || v != (Digest{}) {
			t.Fatalf("static PCR %d = %x after boot", i, v)
		}
	}
	for i := FirstDynamicPCR; i < NumPCRs; i++ {
		v, _ := chip.PCRValue(i)
		for _, b := range v {
			if b != 0xff {
				t.Fatalf("dynamic PCR %d = %x after boot, want all 0xff", i, v)
			}
		}
	}
}

func TestExtendChaining(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	m1 := Measure([]byte("event one"))
	m2 := Measure([]byte("event two"))
	v1, err := chip.Extend(0, m1)
	if err != nil {
		t.Fatal(err)
	}
	// v1 = SHA1(0^20 || m1)
	h := sha1.New()
	h.Write(make([]byte, DigestSize))
	h.Write(m1[:])
	var want Digest
	copy(want[:], h.Sum(nil))
	if v1 != want {
		t.Fatalf("extend result %x, want %x", v1, want)
	}
	v2, _ := chip.Extend(0, m2)
	h = sha1.New()
	h.Write(v1[:])
	h.Write(m2[:])
	copy(want[:], h.Sum(nil))
	if v2 != want {
		t.Fatalf("second extend %x, want %x", v2, want)
	}
	if chip.Extends() != 2 {
		t.Fatalf("Extends() = %d", chip.Extends())
	}
}

func TestExtendOrderMatters(t *testing.T) {
	a, _, _ := testTPM(t, Config{})
	b, _, _ := testTPM(t, Config{})
	m1, m2 := Measure([]byte("x")), Measure([]byte("y"))
	a.Extend(3, m1)
	a.Extend(3, m2)
	b.Extend(3, m2)
	b.Extend(3, m1)
	va, _ := a.PCRValue(3)
	vb, _ := b.PCRValue(3)
	if va == vb {
		t.Fatal("PCR value insensitive to extension order")
	}
}

func TestExtendBadIndex(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	if _, err := chip.Extend(-1, Digest{}); !errors.Is(err, ErrBadPCR) {
		t.Fatalf("Extend(-1): %v", err)
	}
	if _, err := chip.Extend(NumPCRs, Digest{}); !errors.Is(err, ErrBadPCR) {
		t.Fatalf("Extend(24): %v", err)
	}
	if _, err := chip.PCRRead(99); !errors.Is(err, ErrBadPCR) {
		t.Fatalf("PCRRead(99): %v", err)
	}
}

func TestHashSequenceRequiresLocality4(t *testing.T) {
	chip, _, bus := testTPM(t, Config{})
	if err := chip.HashStart(); !errors.Is(err, ErrLocality) {
		t.Fatalf("HashStart at locality 0: %v", err)
	}
	bus.SetLocality(4)
	if err := chip.HashStart(); err != nil {
		t.Fatal(err)
	}
}

func TestHashSequenceResetsDynamicPCRsAndExtends(t *testing.T) {
	chip, _, bus := testTPM(t, Config{})
	pal := []byte("this is the PAL binary")
	bus.SetLocality(4)
	if err := chip.HashStart(); err != nil {
		t.Fatal(err)
	}
	// Dynamic PCRs must now read zero (reset), distinguishing a dynamic
	// reset from the post-boot -1.
	for i := FirstDynamicPCR; i < NumPCRs; i++ {
		v, _ := chip.PCRValue(i)
		if v != (Digest{}) {
			t.Fatalf("dynamic PCR %d = %x after HASH_START", i, v)
		}
	}
	if err := chip.HashData(pal[:10]); err != nil {
		t.Fatal(err)
	}
	if err := chip.HashData(pal[10:]); err != nil {
		t.Fatal(err)
	}
	got, err := chip.HashEnd()
	if err != nil {
		t.Fatal(err)
	}
	want := chain(Digest{}, Measure(pal))
	if got != want {
		t.Fatalf("PCR17 = %x, want extend of PAL measurement %x", got, want)
	}
	v, _ := chip.PCRValue(FirstDynamicPCR)
	if v != want {
		t.Fatal("HashEnd return value differs from stored PCR17")
	}
}

func TestHashSequenceStateErrors(t *testing.T) {
	chip, _, bus := testTPM(t, Config{})
	if err := chip.HashData([]byte("x")); !errors.Is(err, ErrNotHashing) {
		t.Fatalf("HashData without start: %v", err)
	}
	if _, err := chip.HashEnd(); !errors.Is(err, ErrNotHashing) {
		t.Fatalf("HashEnd without start: %v", err)
	}
	bus.SetLocality(4)
	chip.HashStart()
	if err := chip.HashStart(); !errors.Is(err, ErrAlreadyHashed) {
		t.Fatalf("double HashStart: %v", err)
	}
}

func TestBootResetsHashState(t *testing.T) {
	chip, _, bus := testTPM(t, Config{})
	bus.SetLocality(4)
	chip.HashStart()
	chip.HashData([]byte("partial"))
	chip.Boot()
	if _, err := chip.HashEnd(); !errors.Is(err, ErrNotHashing) {
		t.Fatalf("hash survived reboot: %v", err)
	}
	v, _ := chip.PCRValue(FirstDynamicPCR)
	if v[0] != 0xff {
		t.Fatal("dynamic PCR not -1 after reboot")
	}
}

func TestGetRandom(t *testing.T) {
	chip, _, _ := testTPM(t, Config{Seed: 5})
	b1, err := chip.GetRandom(128)
	if err != nil || len(b1) != 128 {
		t.Fatalf("GetRandom: %d bytes, %v", len(b1), err)
	}
	b2, _ := chip.GetRandom(128)
	same := true
	for i := range b1 {
		if b1[i] != b2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two GetRandom calls returned identical bytes")
	}
	if _, err := chip.GetRandom(-1); err == nil {
		t.Fatal("negative GetRandom accepted")
	}
	if b, err := chip.GetRandom(0); err != nil || len(b) != 0 {
		t.Fatalf("GetRandom(0): %v %v", b, err)
	}
}

func TestGetRandomDeterministicPerSeed(t *testing.T) {
	a, _, _ := testTPM(t, Config{Seed: 9})
	b, _, _ := testTPM(t, Config{Seed: 9})
	x, _ := a.GetRandom(32)
	y, _ := b.GetRandom(32)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("same seed produced different GetRandom streams")
		}
	}
}

func TestCompositeDependsOnSelectionAndValues(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	c1, err := chip.Composite(Selection{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := chip.Composite(Selection{1, 0})
	if c1 == c2 {
		t.Fatal("composite insensitive to selection order")
	}
	chip.Extend(0, Measure([]byte("m")))
	c3, _ := chip.Composite(Selection{0, 1})
	if c3 == c1 {
		t.Fatal("composite insensitive to PCR change")
	}
	if _, err := chip.Composite(Selection{77}); !errors.Is(err, ErrBadPCR) {
		t.Fatalf("composite of bad index: %v", err)
	}
}

func TestOperationLatenciesCharged(t *testing.T) {
	clock := sim.NewClock()
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := New(clock, bus, Config{
		KeyBits: 1024,
		Profile: Profile{
			Name:          "test",
			ExtendLatency: 10 * time.Millisecond,
			UnsealLatency: 500 * time.Millisecond,
			QuoteLatency:  300 * time.Millisecond,
			SealBase:      20 * time.Millisecond,
			RandomBase:    5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	chip.Extend(0, Digest{})
	d := clock.Now() - start
	if d < 10*time.Millisecond || d > 11*time.Millisecond {
		t.Fatalf("Extend charged %v, want ≈10ms", d)
	}
	start = clock.Now()
	chip.GetRandom(16)
	d = clock.Now() - start
	if d < 5*time.Millisecond || d > 6*time.Millisecond {
		t.Fatalf("GetRandom charged %v, want ≈5ms", d)
	}
}

func TestPCRReadMatchesValue(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	chip.Extend(5, Measure([]byte("m")))
	v1, _ := chip.PCRValue(5)
	v2, err := chip.PCRRead(5)
	if err != nil || v1 != v2 {
		t.Fatalf("PCRRead %x != PCRValue %x (%v)", v2, v1, err)
	}
}

// Property: a PCR's value after extending a sequence of measurements equals
// the left fold of the chain function — i.e. the register is append-only
// and order-preserving.
func TestExtendFoldProperty(t *testing.T) {
	chip, _, _ := testTPM(t, Config{})
	f := func(msgs [][]byte) bool {
		chip.Boot()
		want := Digest{}
		for _, m := range msgs {
			meas := Measure(m)
			chip.Extend(2, meas)
			want = chain(want, meas)
		}
		got, _ := chip.PCRValue(2)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
