package tpm

import (
	"bytes"
	"errors"
	"testing"
)

func sePCRTPM(t *testing.T, n int) *TPM {
	t.Helper()
	chip, _, _ := testTPM(t, Config{NumSePCRs: n})
	return chip
}

func TestAllocateSePCR(t *testing.T) {
	chip := sePCRTPM(t, 2)
	meas := Measure([]byte("pal A"))
	h, err := chip.AllocateSePCR(0, meas)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := chip.SePCRStateOf(h)
	if st != SePCRExclusive {
		t.Fatalf("state = %v, want Exclusive", st)
	}
	v, _ := chip.SePCRValue(h)
	if v != chain(Digest{}, meas) {
		t.Fatal("sePCR not reset+extended with PAL measurement")
	}
}

func TestAllocateExhaustion(t *testing.T) {
	chip := sePCRTPM(t, 2)
	if _, err := chip.AllocateSePCR(0, Digest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := chip.AllocateSePCR(1, Digest{}); err != nil {
		t.Fatal(err)
	}
	// Third concurrent PAL: no register left, SLAUNCH must fail (§5.4.1).
	if _, err := chip.AllocateSePCR(2, Digest{}); !errors.Is(err, ErrNoSePCR) {
		t.Fatalf("exhausted allocate: %v", err)
	}
}

func TestStockTPMHasNoSePCRs(t *testing.T) {
	chip := sePCRTPM(t, 0)
	if chip.NumSePCRs() != 0 {
		t.Fatal("stock TPM has sePCRs")
	}
	if _, err := chip.AllocateSePCR(0, Digest{}); !errors.Is(err, ErrNoSePCR) {
		t.Fatalf("allocate on stock TPM: %v", err)
	}
}

func TestSePCRExclusiveAccessControl(t *testing.T) {
	chip := sePCRTPM(t, 1)
	h, _ := chip.AllocateSePCR(3, Measure([]byte("pal")))
	// The bound CPU can extend.
	if _, err := chip.SePCRExtend(h, 3, Measure([]byte("input"))); err != nil {
		t.Fatal(err)
	}
	// Another CPU (or the untrusted OS) cannot.
	if _, err := chip.SePCRExtend(h, 0, Measure([]byte("evil"))); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("foreign extend: %v", err)
	}
	if _, err := chip.SealSePCR(h, 0, []byte("x")); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("foreign seal: %v", err)
	}
	if _, err := chip.UnsealSePCR(h, 0, nil); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("foreign unseal: %v", err)
	}
}

func TestSePCRSealUnsealAcrossHandles(t *testing.T) {
	// §5.4.4 Challenge 4: a PAL sealing under one handle must unseal
	// under a different handle on its next execution.
	chip := sePCRTPM(t, 2)
	palMeas := Measure([]byte("factoring pal"))

	// First execution: gets register 0, seals state, exits via quote path.
	h1, _ := chip.AllocateSePCR(0, palMeas)
	blob, err := chip.SealSePCR(h1, 0, []byte("intermediate factors"))
	if err != nil {
		t.Fatal(err)
	}
	chip.ReleaseSePCR(h1, 0)
	if _, err := chip.QuoteSePCR(h1, []byte("n")); err != nil {
		t.Fatal(err)
	}

	// An unrelated PAL grabs register 0.
	if _, err := chip.AllocateSePCR(1, Measure([]byte("other pal"))); err != nil {
		t.Fatal(err)
	}

	// Same PAL relaunches, now on register 1: unseal must still work.
	h2, err := chip.AllocateSePCR(0, palMeas)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h1 {
		t.Fatal("test needs a different handle on relaunch")
	}
	got, err := chip.UnsealSePCR(h2, 0, blob)
	if err != nil || !bytes.Equal(got, []byte("intermediate factors")) {
		t.Fatalf("cross-handle unseal: %q, %v", got, err)
	}
}

func TestSePCRUnsealWrongPALFails(t *testing.T) {
	chip := sePCRTPM(t, 2)
	hA, _ := chip.AllocateSePCR(0, Measure([]byte("pal A")))
	blob, err := chip.SealSePCR(hA, 0, []byte("A's secret"))
	if err != nil {
		t.Fatal(err)
	}
	hB, _ := chip.AllocateSePCR(1, Measure([]byte("pal B")))
	if _, err := chip.UnsealSePCR(hB, 1, blob); !errors.Is(err, ErrPCRMismatch) {
		t.Fatalf("PAL B unsealed A's sePCR blob: %v", err)
	}
}

func TestSePCRModeSeparation(t *testing.T) {
	chip := sePCRTPM(t, 1)
	h, _ := chip.AllocateSePCR(0, Measure([]byte("pal")))
	seBlob, _ := chip.SealSePCR(h, 0, []byte("se"))
	pcrBlob, _ := chip.Seal(Selection{0}, []byte("pcr"))
	if _, err := chip.Unseal(seBlob); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("sePCR blob accepted by PCR unseal: %v", err)
	}
	if _, err := chip.UnsealSePCR(h, 0, pcrBlob); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("PCR blob accepted by sePCR unseal: %v", err)
	}
}

func TestSePCRLifecycleStates(t *testing.T) {
	chip := sePCRTPM(t, 1)
	h, _ := chip.AllocateSePCR(0, Measure([]byte("pal")))

	// Cannot quote while Exclusive (§5.4.3).
	if _, err := chip.QuoteSePCR(h, nil); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("quote in Exclusive: %v", err)
	}
	// Cannot TPM_SEPCR_Free while Exclusive.
	if err := chip.FreeSePCR(h); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("free in Exclusive: %v", err)
	}
	// SFREE: Exclusive -> Quote.
	if err := chip.ReleaseSePCR(h, 0); err != nil {
		t.Fatal(err)
	}
	st, _ := chip.SePCRStateOf(h)
	if st != SePCRQuote {
		t.Fatalf("state after release = %v", st)
	}
	// Extend no longer allowed.
	if _, err := chip.SePCRExtend(h, 0, Digest{}); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("extend in Quote state: %v", err)
	}
	// Quote from untrusted code works, then register frees.
	q, err := chip.QuoteSePCR(h, []byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(chip.AIKPublic(), q); err != nil {
		t.Fatalf("sePCR quote rejected: %v", err)
	}
	if q.SePCRHandle != h {
		t.Fatalf("quote handle %d, want %d", q.SePCRHandle, h)
	}
	st, _ = chip.SePCRStateOf(h)
	if st != SePCRFree {
		t.Fatalf("state after quote = %v, want Free", st)
	}
}

func TestSePCRFreeWithoutQuote(t *testing.T) {
	chip := sePCRTPM(t, 1)
	h, _ := chip.AllocateSePCR(0, Digest{})
	chip.ReleaseSePCR(h, 0)
	if err := chip.FreeSePCR(h); err != nil {
		t.Fatal(err)
	}
	st, _ := chip.SePCRStateOf(h)
	if st != SePCRFree {
		t.Fatalf("state = %v", st)
	}
}

func TestSKillExtendsMarkerAndFrees(t *testing.T) {
	chip := sePCRTPM(t, 1)
	palMeas := Measure([]byte("wedged pal"))
	h, _ := chip.AllocateSePCR(0, palMeas)
	before, _ := chip.SePCRValue(h)
	if err := chip.KillSePCR(h); err != nil {
		t.Fatal(err)
	}
	st, _ := chip.SePCRStateOf(h)
	if st != SePCRFree {
		t.Fatalf("state after SKILL = %v", st)
	}
	// A relaunch reuses the register; the kill marker must have been
	// folded in before the free so no quoteable trace of a clean exit
	// exists. (Value is cleared on next allocate.)
	want := chain(before, SKillMarker)
	_ = want // value checked via state machine: register reset on reuse
	h2, err := chip.AllocateSePCR(1, palMeas)
	if err != nil || h2 != h {
		t.Fatalf("register not reusable after SKILL: %v", err)
	}
}

func TestSKillRequiresExclusive(t *testing.T) {
	chip := sePCRTPM(t, 1)
	if err := chip.KillSePCR(0); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("SKILL on Free register: %v", err)
	}
	h, _ := chip.AllocateSePCR(0, Digest{})
	chip.ReleaseSePCR(h, 0)
	if err := chip.KillSePCR(h); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("SKILL on Quote register: %v", err)
	}
}

func TestRebindSePCR(t *testing.T) {
	chip := sePCRTPM(t, 1)
	h, _ := chip.AllocateSePCR(0, Measure([]byte("pal")))
	// Resume on CPU 2: rebind, then CPU 2 may extend and CPU 0 may not.
	if err := chip.RebindSePCR(h, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := chip.SePCRExtend(h, 2, Digest{}); err != nil {
		t.Fatalf("extend by new owner: %v", err)
	}
	if _, err := chip.SePCRExtend(h, 0, Digest{}); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("extend by old owner: %v", err)
	}
	// Rebind with a stale owner fails.
	if err := chip.RebindSePCR(h, 0, 3); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("stale rebind: %v", err)
	}
}

func TestSePCRBadHandles(t *testing.T) {
	chip := sePCRTPM(t, 1)
	for _, h := range []int{-1, 1, 99} {
		if _, err := chip.SePCRStateOf(h); !errors.Is(err, ErrSePCRHandle) {
			t.Fatalf("StateOf(%d): %v", h, err)
		}
		if _, err := chip.SePCRValue(h); !errors.Is(err, ErrSePCRHandle) {
			t.Fatalf("Value(%d): %v", h, err)
		}
		if err := chip.KillSePCR(h); !errors.Is(err, ErrSePCRHandle) {
			t.Fatalf("Kill(%d): %v", h, err)
		}
		if err := chip.FreeSePCR(h); !errors.Is(err, ErrSePCRHandle) {
			t.Fatalf("Free(%d): %v", h, err)
		}
		if _, err := chip.QuoteSePCR(h, nil); !errors.Is(err, ErrSePCRHandle) {
			t.Fatalf("Quote(%d): %v", h, err)
		}
	}
}

func TestBootClearsSePCRs(t *testing.T) {
	chip := sePCRTPM(t, 2)
	chip.AllocateSePCR(0, Measure([]byte("pal")))
	chip.Boot()
	for h := 0; h < 2; h++ {
		st, _ := chip.SePCRStateOf(h)
		if st != SePCRFree {
			t.Fatalf("sePCR %d = %v after reboot", h, st)
		}
	}
}

func TestSePCRStateString(t *testing.T) {
	if SePCRFree.String() != "Free" || SePCRExclusive.String() != "Exclusive" ||
		SePCRQuote.String() != "Quote" {
		t.Fatal("state names wrong")
	}
	if SePCRState(9).String() == "" {
		t.Fatal("unknown state renders empty")
	}
}
