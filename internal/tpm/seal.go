package tpm

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Sealed-blob wire format (all integers little-endian):
//
//	magic   [4]byte  "SEAL"
//	mode    uint8    0 = PCR selection, 1 = sePCR (§5.4.4)
//	nsel    uint8    number of selected PCR indices (mode 0)
//	sel     [nsel]byte
//	release [20]byte composite digest required at unseal
//	eklen   uint16   RSA-encrypted AES key length
//	ek      [eklen]byte
//	nonce   [12]byte GCM nonce
//	ct      rest     AES-256-GCM ciphertext of the payload
//
// The RSA layer uses OAEP under the SRK, so only this TPM can recover the
// AES key; the AES-GCM layer carries arbitrary-size payloads (a real TPM
// seals small blobs, but PAL state in the paper's PAL Use flow can be
// larger, and TPM v1.2 implementations wrap larger data the same way).
const sealMagic = "SEAL"

const (
	sealModePCR   = 0
	sealModeSePCR = 1
)

// Seal encrypts data so that it can only be unsealed by this TPM while the
// selected PCRs hold their current values (§2.1.2).
func (t *TPM) Seal(sel Selection, data []byte) ([]byte, error) {
	release, err := t.Composite(sel)
	if err != nil {
		return nil, err
	}
	selBytes := make([]byte, len(sel))
	for i, idx := range sel {
		selBytes[i] = byte(idx)
	}
	sp := t.cmdSpan("TPM_Seal").Attr("mode", "pcr").AttrInt("bytes", len(data))
	blob, err := t.sealBlob(sealModePCR, selBytes, release, data)
	if err != nil {
		t.endCmd(sp, err)
		return nil, err
	}
	t.busCommand(64+len(data), len(blob))
	t.charge(t.sealCost(len(data)), t.profile.Jitter)
	t.endCmd(sp, nil)
	return blob, nil
}

// sealCost models Seal latency as a base plus a per-KB term; the paper's
// Broadcom numbers (11.39 ms minimal, 20.01 ms for PAL Gen's payload)
// indicate payload-size dependence.
func (t *TPM) sealCost(n int) time.Duration {
	return t.profile.SealBase + time.Duration(n)*t.profile.SealPerKB/1024
}

// Unseal decrypts a sealed blob, provided the PCRs it names currently hold
// the values recorded at seal time. The dominant cost is the private-key
// RSA operation (§4.2).
func (t *TPM) Unseal(blob []byte) ([]byte, error) {
	mode, selBytes, release, ekey, nonce, ct, err := parseBlob(blob)
	if err != nil {
		return nil, err
	}
	if mode != sealModePCR {
		return nil, fmt.Errorf("%w: blob sealed to an sePCR; use UnsealSePCR", ErrBadBlob)
	}
	sel := make(Selection, len(selBytes))
	for i, b := range selBytes {
		sel[i] = int(b)
	}
	now, err := t.Composite(sel)
	if err != nil {
		return nil, err
	}
	// Latency is charged even for a failed unseal: the TPM performs the
	// RSA decryption before it can compare the release policy.
	sp := t.cmdSpan("TPM_Unseal").Attr("mode", "pcr")
	t.busCommand(len(blob), 64)
	t.charge(t.profile.UnsealLatency, t.profile.Jitter)
	if !equalDigest(now, release) {
		err := fmt.Errorf("%w: composite %x, sealed to %x", ErrPCRMismatch, now, release)
		t.endCmd(sp, err)
		return nil, err
	}
	pt, err := t.openBlob(mode, selBytes, release, ekey, nonce, ct)
	if err != nil {
		t.endCmd(sp, err)
		return nil, err
	}
	t.unsealOK++
	t.endCmd(sp, nil)
	return pt, nil
}

// Unseals returns the number of successful unseal operations served.
func (t *TPM) Unseals() int { return t.unsealOK }

// buildAAD assembles the GCM additional data binding a blob to its release
// policy, appending into dst (a pooled scratch buffer).
func buildAAD(dst []byte, mode byte, selBytes []byte, release Digest) []byte {
	dst = append(dst[:0], mode)
	dst = append(dst, selBytes...)
	return append(dst, release[:]...)
}

// sealLabel is the OAEP label binding the key envelope to the seal command.
var sealLabel = []byte("TPM_SEAL")

// sealBlob builds the hybrid envelope. The AES-GCM state is cached per
// session key and the SRK encryption memoized (memo.go); the RNG draws —
// session key, nonce, OAEP seed — happen unconditionally so the stream
// stays aligned with an un-memoized execution.
func (t *TPM) sealBlob(mode byte, selBytes []byte, release Digest, data []byte) ([]byte, error) {
	var aesKey [32]byte
	t.rng.Fill(aesKey[:])
	gcm, err := aeadFor(aesKey)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	t.rng.Fill(nonce)
	// Bind the ciphertext to the release policy via GCM additional data.
	aadBuf := getScratch()
	aad := buildAAD(*aadBuf, mode, selBytes, release)
	ct := gcm.Seal(nil, nonce, data, aad)
	putScratch(aadBuf)

	ekey, err := memoEncryptOAEP(t.rng, &t.srk.PublicKey, aesKey[:], sealLabel)
	if err != nil {
		return nil, err
	}

	out := make([]byte, 0, 4+1+1+len(selBytes)+DigestSize+2+len(ekey)+len(nonce)+len(ct))
	out = append(out, sealMagic...)
	out = append(out, mode, byte(len(selBytes)))
	out = append(out, selBytes...)
	out = append(out, release[:]...)
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(ekey)))
	out = append(out, l[:]...)
	out = append(out, ekey...)
	out = append(out, nonce...)
	out = append(out, ct...)
	return out, nil
}

// openBlob reverses sealBlob's crypto given parsed fields. The caller has
// already validated the release policy; GCM authentication over the AAD
// (the blob header) still protects integrity of the stored blob itself.
func (t *TPM) openBlob(mode byte, selBytes []byte, release Digest, ekey, nonce, ct []byte) ([]byte, error) {
	aesKey, err := memoDecryptOAEP(t.srk, ekey, sealLabel)
	if err != nil {
		return nil, fmt.Errorf("%w: SRK decrypt failed: %v", ErrBadBlob, err)
	}
	if len(aesKey) != 32 {
		return nil, fmt.Errorf("%w: bad session key length %d", ErrBadBlob, len(aesKey))
	}
	gcm, err := aeadFor([32]byte(aesKey))
	if err != nil {
		return nil, err
	}
	aadBuf := getScratch()
	defer putScratch(aadBuf)
	pt, err := gcm.Open(nil, nonce, ct, buildAAD(*aadBuf, mode, selBytes, release))
	if err != nil {
		return nil, fmt.Errorf("%w: payload authentication failed: %v", ErrBadBlob, err)
	}
	return pt, nil
}

func parseBlob(blob []byte) (mode byte, selBytes []byte, release Digest, ekey, nonce, ct []byte, err error) {
	fail := func(msg string) (byte, []byte, Digest, []byte, []byte, []byte, error) {
		return 0, nil, Digest{}, nil, nil, nil, fmt.Errorf("%w: %s", ErrBadBlob, msg)
	}
	if len(blob) < 6 || string(blob[:4]) != sealMagic {
		return fail("bad magic")
	}
	mode = blob[4]
	nsel := int(blob[5])
	p := 6
	if len(blob) < p+nsel+DigestSize+2 {
		return fail("truncated header")
	}
	selBytes = blob[p : p+nsel]
	p += nsel
	copy(release[:], blob[p:p+DigestSize])
	p += DigestSize
	eklen := int(binary.LittleEndian.Uint16(blob[p:]))
	p += 2
	if len(blob) < p+eklen+12 {
		return fail("truncated key/nonce")
	}
	ekey = blob[p : p+eklen]
	p += eklen
	nonce = blob[p : p+12]
	p += 12
	ct = blob[p:]
	return mode, selBytes, release, ekey, nonce, ct, nil
}
