package tpm

import "time"

// Profile is a vendor timing model for one TPM chip. Figure 3 of the paper
// shows that v1.2 TPMs from different vendors differ wildly per operation —
// the Broadcom part has the fastest Seal but the slowest Quote and Unseal —
// so each measured chip gets its own profile.
//
// Calibration anchors printed in the paper's text:
//
//   - Broadcom Seal: 20.01 ms (PAL Gen payload) and 11.39 ms (minimal
//     payload) — hence the base + per-KB model;
//   - Infineon Unseal: 390.98 ms;
//   - Infineon Seal is 213 ms slower than Broadcom's;
//   - Broadcom (Quote+Unseal) exceeds Infineon's by 1132 ms;
//   - Broadcom is slowest for Quote and Unseal; Infineon has the best
//     average across the five charted operations.
//
// Bars the paper only charts (both Atmel parts, Extend, GetRandom) are set
// to chart-consistent values; EXPERIMENTS.md marks them approximate.
type Profile struct {
	// Name identifies the chip, e.g. "Broadcom (HP dc5750)".
	Name string
	// ExtendLatency is the cost of TPM_Extend.
	ExtendLatency time.Duration
	// ReadLatency is the cost of TPM_PCRRead.
	ReadLatency time.Duration
	// SealBase + payload×SealPerKB/1024 is the cost of TPM_Seal.
	SealBase  time.Duration
	SealPerKB time.Duration
	// UnsealLatency is the cost of TPM_Unseal (dominated by the 2048-bit
	// private-key decryption).
	UnsealLatency time.Duration
	// QuoteLatency is the cost of TPM_Quote (private-key signature).
	QuoteLatency time.Duration
	// RandomBase + n×RandomPerByte is the cost of TPM_GetRandom(n).
	RandomBase    time.Duration
	RandomPerByte time.Duration
	// Jitter is the standard deviation of per-operation noise, producing
	// Figure 3's error bars.
	Jitter time.Duration
}

// IsZero reports whether the profile is the free (zero-latency) model.
func (p Profile) IsZero() bool { return p == Profile{} }

// SealGenPayload is the payload size used when quoting a single "Seal"
// latency for a profile (Figure 3's bar): 1 KB, the PAL Gen convention that
// makes the Broadcom bar land on its published 20.01 ms.
const SealGenPayload = 1024

// SealLatency returns the modeled TPM_Seal cost for a payload of n bytes.
func (p Profile) SealLatency(n int) time.Duration {
	return p.SealBase + time.Duration(n)*p.SealPerKB/1024
}

// RandomLatency returns the modeled TPM_GetRandom cost for n bytes.
func (p Profile) RandomLatency(n int) time.Duration {
	return p.RandomBase + time.Duration(n)*p.RandomPerByte
}

// ProfileBroadcom models the Broadcom v1.2 TPM in the HP dc5750, the
// paper's primary test machine.
func ProfileBroadcom() Profile {
	return Profile{
		Name:          "Broadcom (HP dc5750)",
		ExtendLatency: 24 * time.Millisecond,
		ReadLatency:   800 * time.Microsecond,
		SealBase:      11390 * time.Microsecond, // 11.39 ms anchor
		SealPerKB:     8620 * time.Microsecond,  // -> 20.01 ms at 1 KB
		UnsealLatency: 905 * time.Millisecond,
		QuoteLatency:  948980 * time.Microsecond, // keeps the 1132 ms Quote+Unseal delta vs Infineon
		RandomBase:    1200 * time.Microsecond,
		RandomPerByte: 1500 * time.Nanosecond,
		Jitter:        1500 * time.Microsecond,
	}
}

// ProfileInfineon models the Infineon v1.2 TPM in the AMD workstation; the
// best average performer in Figure 3.
func ProfileInfineon() Profile {
	return Profile{
		Name:          "Infineon (AMD workstation)",
		ExtendLatency: 30 * time.Millisecond,
		ReadLatency:   700 * time.Microsecond,
		SealBase:      224390 * time.Microsecond, // Broadcom + 213 ms at 1 KB
		SealPerKB:     8620 * time.Microsecond,
		UnsealLatency: 390980 * time.Microsecond, // 390.98 ms anchor
		QuoteLatency:  331 * time.Millisecond,    // keeps the 1132 ms delta
		RandomBase:    27 * time.Millisecond,
		RandomPerByte: 2 * time.Microsecond,
		Jitter:        2 * time.Millisecond,
	}
}

// ProfileAtmelT60 models the Atmel v1.2 TPM in the Lenovo T60 laptop.
func ProfileAtmelT60() Profile {
	return Profile{
		Name:          "Atmel (Lenovo T60)",
		ExtendLatency: 12 * time.Millisecond,
		ReadLatency:   600 * time.Microsecond,
		SealBase:      130 * time.Millisecond,
		SealPerKB:     8620 * time.Microsecond,
		UnsealLatency: 736 * time.Millisecond,
		QuoteLatency:  700 * time.Millisecond,
		RandomBase:    52 * time.Millisecond,
		RandomPerByte: 3 * time.Microsecond,
		Jitter:        2500 * time.Microsecond,
	}
}

// ProfileAtmelTEP models the (different) Atmel v1.2 TPM in the Intel TXT
// Technology Enabling Platform.
func ProfileAtmelTEP() Profile {
	return Profile{
		Name:          "Atmel (Intel TEP)",
		ExtendLatency: 12 * time.Millisecond,
		ReadLatency:   600 * time.Microsecond,
		SealBase:      152 * time.Millisecond,
		SealPerKB:     8620 * time.Microsecond,
		UnsealLatency: 802 * time.Millisecond,
		QuoteLatency:  798 * time.Millisecond,
		RandomBase:    61 * time.Millisecond,
		RandomPerByte: 3 * time.Microsecond,
		Jitter:        2500 * time.Microsecond,
	}
}

// Profiles returns the four measured chips in Figure 3's legend order.
func Profiles() []Profile {
	return []Profile{
		ProfileAtmelT60(),
		ProfileBroadcom(),
		ProfileInfineon(),
		ProfileAtmelTEP(),
	}
}

// FigureAverage returns the profile's mean latency across the five
// operations Figure 3 charts (Extend, Seal at the 1 KB convention, Quote,
// Unseal, GetRandom 128 B); the paper uses this to call Infineon the best
// average performer.
func (p Profile) FigureAverage() time.Duration {
	sum := p.ExtendLatency + p.SealLatency(SealGenPayload) + p.QuoteLatency +
		p.UnsealLatency + p.RandomLatency(128)
	return sum / 5
}
