package tpm

import (
	"crypto/hmac"
	"crypto/rsa"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"

	"minimaltcb/internal/merkle"
	"minimaltcb/internal/obs"
)

// This file implements batched sePCR quotes and quote sessions — the
// attestation-amortization extension the roadmap calls "killing the RSA
// tax". The paper's §4 measures the per-operation cost that motivates it:
// every TPM_Quote pays one private-key RSA operation, and a service
// attesting thousands of PAL executions per second pays it per job.
//
// TPM_SEPCR_QuoteBatch signs N registers with ONE RSA signature: the
// composites become leaves of an RFC 6962 Merkle tree (internal/merkle,
// shared with the audit log) and the AIK signs the root once. Each job gets
// its leaf's inclusion proof, so a verifier holding just its own entry can
// check membership in O(log N) hashes plus the one shared signature.
//
// Quote sessions amortize the *verifier's* RSA in the same stroke: the TPM
// mints a per-session HMAC key, binds it to the AIK with one signed grant,
// and MACs every subsequent batch. A verifier that checked the grant (full
// AIK cert chain + one RSA verify) authenticates later batches by HMAC
// alone. In real hardware the key would be established with an
// authenticated key exchange; the simulation models the resulting
// symmetric channel (see docs/ATTESTATION.md for the threat model).

// ErrEmptyBatch rejects a batch quote over zero registers: an empty tree
// head is signable but attests nothing, and a verifier must never accept
// an inclusion proof against it.
var ErrEmptyBatch = errors.New("tpm: empty quote batch")

// ErrUnknownSession rejects a batch bound to a session the TPM does not
// hold (never opened, or wiped by reboot).
var ErrUnknownSession = errors.New("tpm: unknown quote session")

// batchLeafDomain domain-separates batch leaves from every other use of
// the shared Merkle code (the audit log hashes canonical event records).
const batchLeafDomain = "minimaltcb/tpm/batch-leaf/v1"

// BatchRequest names one register to include in a batch quote, with the
// per-job nonce its verifier chose.
type BatchRequest struct {
	Handle int
	Nonce  []byte
}

// BatchEntry is one job's slice of a batch quote: its leaf material plus
// the inclusion proof tying it to the signed root.
type BatchEntry struct {
	// Handle is the sePCR the composite was read from.
	Handle int `json:"handle"`
	// Composite is the register value at quote time.
	Composite Digest `json:"composite"`
	// Nonce is the per-job verifier nonce bound into the leaf.
	Nonce []byte `json:"nonce"`
	// Index is the leaf's position in the tree.
	Index int `json:"index"`
	// Proof is the RFC 6962 inclusion proof from the leaf to the root.
	Proof []merkle.Hash `json:"proof,omitempty"`
}

// BatchQuote is the TPM's signed statement over a batch: one AIK signature
// (and, within a session, one HMAC) over the Merkle root covering every
// entry.
type BatchQuote struct {
	// Root is the RFC 6962 tree head over the entries' leaves.
	Root merkle.Hash `json:"root"`
	// Count is the number of leaves the root covers.
	Count int `json:"count"`
	// Nonce is the batch-level anti-replay nonce (the batcher's, distinct
	// from the per-job nonces bound into the leaves).
	Nonce []byte `json:"nonce"`
	// Signature is the RSA-PKCS#1v1.5-SHA1 AIK signature over
	// BatchSignedDigest(Root, Count, Nonce) — the one RSA operation the
	// whole batch pays.
	Signature []byte `json:"signature"`
	// SessionID and SessionMAC bind the batch to an open quote session;
	// zero/nil outside sessions.
	SessionID  uint64 `json:"session_id,omitempty"`
	SessionMAC []byte `json:"session_mac,omitempty"`
	// Entries carries every job's leaf and proof, in leaf order.
	Entries []BatchEntry `json:"entries"`
}

// BatchLeaf computes the Merkle leaf for one register's contribution:
// domain tag, handle, composite and the per-job nonce, all length-framed
// so no two distinct inputs collide.
func BatchLeaf(handle int, composite Digest, jobNonce []byte) merkle.Hash {
	bp := getScratch()
	defer putScratch(bp)
	b := append(*bp, batchLeafDomain...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(handle))
	b = append(b, u32[:]...)
	b = append(b, composite[:]...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(jobNonce)))
	b = append(b, u32[:]...)
	b = append(b, jobNonce...)
	return merkle.LeafHash(b)
}

// BatchSignedDigest computes the message the AIK signs for a batch:
// SHA1("QBAT" || root || count || nonce). The "QBAT" tag keeps batch
// signatures from ever colliding with plain quote signatures ("QUOT"),
// session grants ("SESS") or audit heads.
func BatchSignedDigest(root merkle.Hash, count int, nonce []byte) Digest {
	bp := getScratch()
	defer putScratch(bp)
	b := append(*bp, "QBAT"...)
	b = append(b, root[:]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(count))
	b = append(b, u32[:]...)
	b = append(b, nonce...)
	return Measure(b)
}

// SessionGrantDigest computes the message the AIK signs when opening a
// quote session: SHA1("SESS" || id || key || nonce). The signature over it
// is the one RSA operation that authenticates every batch the session will
// ever MAC.
func SessionGrantDigest(id uint64, key Digest, nonce []byte) Digest {
	bp := getScratch()
	defer putScratch(bp)
	b := append(*bp, "SESS"...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], id)
	b = append(b, u64[:]...)
	b = append(b, key[:]...)
	b = append(b, nonce...)
	return Measure(b)
}

// SessionMAC computes the HMAC-SHA1 channel binding of a batch's signed
// digest under a session key. Both sides of the channel call this.
func SessionMAC(key Digest, signed Digest) []byte {
	m := hmac.New(sha1.New, key[:])
	m.Write(signed[:])
	return m.Sum(nil)
}

// QuoteSession is the grant the TPM returns from OpenQuoteSession. The
// verifier checks Sig against the (CA-certified) AIK once, then holds Key
// to authenticate batches by HMAC.
type QuoteSession struct {
	ID    uint64
	Key   Digest
	Nonce []byte
	Sig   []byte
}

// OpenQuoteSession mints a fresh session key, binds it to the AIK with one
// signed grant over the verifier's nonce, and registers the session so
// subsequent batch quotes can be MACed under it. Sessions do not survive
// reboot (Boot wipes them), exactly like real TPM authorization sessions.
func (t *TPM) OpenQuoteSession(nonce []byte) (*QuoteSession, error) {
	if err := t.inject("TPM_Quote_SessionOpen"); err != nil {
		return nil, err
	}
	sp := t.cmdSpan("TPM_Quote_SessionOpen")
	t.sessionSeq++
	id := t.sessionSeq
	var key Digest
	t.rng.Fill(key[:])
	sig, err := memoSignPKCS1v15(t.aik, SessionGrantDigest(id, key, nonce))
	if err != nil {
		t.endCmd(sp, err)
		return nil, fmt.Errorf("tpm: session grant signature: %w", err)
	}
	if t.sessions == nil {
		t.sessions = make(map[uint64]Digest)
	}
	t.sessions[id] = key
	t.busCommand(20+len(nonce), len(sig)+28)
	t.charge(t.profile.QuoteLatency, t.profile.Jitter)
	t.endCmd(sp, nil)
	return &QuoteSession{
		ID:    id,
		Key:   key,
		Nonce: append([]byte(nil), nonce...),
		Sig:   sig,
	}, nil
}

// QuoteSePCRBatch generates one attestation covering every requested
// register: all composites become Merkle leaves, the AIK signs the root
// once, and each entry carries its inclusion proof. sessionID, when
// non-zero, must name an open session; the batch is then additionally
// MACed under the session key.
//
// Failure atomicity mirrors the one-shot path's retry contract, batch-wide:
// every register is validated to be in the Quote state BEFORE anything is
// consumed, and the fault-injection point sits before the signature — a
// failed batch leaves all N registers still in Quote, attestable on retry,
// and no verifier nonce is burned.
func (t *TPM) QuoteSePCRBatch(reqs []BatchRequest, batchNonce []byte, sessionID uint64) (*BatchQuote, error) {
	if len(reqs) == 0 {
		return nil, ErrEmptyBatch
	}
	// Validate everything before mutating anything. A duplicated handle is
	// rejected here too: a register can be consumed only once per batch.
	seen := make(map[int]bool, len(reqs))
	for _, r := range reqs {
		if r.Handle < 0 || r.Handle >= len(t.sePCRs) {
			return nil, fmt.Errorf("%w: %d", ErrSePCRHandle, r.Handle)
		}
		if seen[r.Handle] {
			return nil, fmt.Errorf("%w: sePCR %d listed twice in batch", ErrSePCRState, r.Handle)
		}
		seen[r.Handle] = true
		if st := t.sePCRs[r.Handle].state; st != SePCRQuote {
			return nil, fmt.Errorf("%w: sePCR %d is %v, batch quote needs Quote state",
				ErrSePCRState, r.Handle, st)
		}
	}
	var key Digest
	if sessionID != 0 {
		var ok bool
		if key, ok = t.sessions[sessionID]; !ok {
			return nil, fmt.Errorf("%w: %d", ErrUnknownSession, sessionID)
		}
	}
	// The injection point sits before the signature: an injected failure
	// leaves every register in Quote, the whole batch retryable.
	if err := t.inject("TPM_Quote"); err != nil {
		return nil, err
	}
	sp := t.cmdSpan("TPM_Quote").Attr("mode", "sepcr-batch").AttrInt("batch", len(reqs))

	leaves := make([]merkle.Hash, len(reqs))
	entries := make([]BatchEntry, len(reqs))
	for i, r := range reqs {
		composite := t.sePCRs[r.Handle].value
		leaves[i] = BatchLeaf(r.Handle, composite, r.Nonce)
		entries[i] = BatchEntry{
			Handle:    r.Handle,
			Composite: composite,
			Nonce:     append([]byte(nil), r.Nonce...),
			Index:     i,
		}
	}
	root := merkle.Root(leaves)
	signed := BatchSignedDigest(root, len(reqs), batchNonce)
	sig, err := memoSignPKCS1v15(t.aik, signed)
	if err != nil {
		err = fmt.Errorf("tpm: batch quote signature: %w", err)
		t.endCmd(sp, err)
		return nil, err
	}
	for i := range entries {
		entries[i].Proof = merkle.InclusionProof(leaves, i)
	}
	q := &BatchQuote{
		Root:      root,
		Count:     len(reqs),
		Nonce:     append([]byte(nil), batchNonce...),
		Signature: sig,
		Entries:   entries,
	}
	if sessionID != 0 {
		q.SessionID = sessionID
		q.SessionMAC = SessionMAC(key, signed)
	}
	// Only now, with the attestation in hand, consume the registers.
	for i, r := range reqs {
		p := &t.sePCRs[r.Handle]
		p.state = SePCRFree
		p.value = Digest{}
		t.lifeClose(r.Handle, obs.Attr{Key: "quoted", Val: "batch"})
		t.lifeFree(r.Handle)
		t.auditEvent("sepcr_quote", r.Handle, entries[i].Composite)
	}
	// The "handle" slot carries the leaf count: the event covers the whole
	// batch, not one register, and the width is what auditors grep for.
	t.auditEvent("quote_batch", len(reqs), Digest(sha1.Sum(root[:])))
	// The RSA signature is paid once; each extra leaf costs one extend-
	// class hash operation. This is the amortization the batch buys.
	t.busCommand(40+len(batchNonce)+20*len(reqs), len(sig)+40+28*len(reqs))
	t.charge(t.profile.QuoteLatency, t.profile.Jitter)
	for i := 1; i < len(reqs); i++ {
		t.charge(t.profile.ExtendLatency, 0)
	}
	t.endCmd(sp, nil)
	return q, nil
}

// VerifyBatchSignature checks only a batch quote's RSA signature over the
// Merkle root — the one public-key operation shared by all entries.
// Verification-side callers that authenticate batches another way (the
// session HMAC channel) or memoize per-batch results build on this.
func VerifyBatchSignature(aik *rsa.PublicKey, q *BatchQuote) error {
	if q == nil {
		return errors.New("tpm: nil batch quote")
	}
	signed := BatchSignedDigest(q.Root, q.Count, q.Nonce)
	if err := memoVerifyPKCS1v15(aik, signed, q.Signature); err != nil {
		return fmt.Errorf("tpm: batch quote signature: %w", err)
	}
	return nil
}

// VerifySessionGrant checks the AIK signature binding a session grant's
// {ID, key} to the nonce the verifier chose.
func VerifySessionGrant(aik *rsa.PublicKey, s *QuoteSession) error {
	if s == nil {
		return errors.New("tpm: nil session grant")
	}
	return memoVerifyPKCS1v15(aik, SessionGrantDigest(s.ID, s.Key, s.Nonce), s.Sig)
}

// VerifyBatchInclusion checks one leaf's inclusion proof against a batch
// root — a thin re-export of the shared Merkle verifier so callers pair it
// with BatchLeaf without importing internal/merkle themselves.
func VerifyBatchInclusion(leaf merkle.Hash, index, size int, proof []merkle.Hash, root merkle.Hash) bool {
	return merkle.VerifyInclusion(leaf, index, size, proof, root)
}

// VerifyBatchQuote checks a batch quote's one RSA signature and every
// entry's inclusion proof against the signed root. It charges no virtual
// time (verification runs on the verifier's machine) and ignores session
// fields — HMAC channel verification lives with the session holder
// (internal/attest), which knows the key.
func VerifyBatchQuote(aik *rsa.PublicKey, q *BatchQuote) error {
	if q == nil {
		return errors.New("tpm: nil batch quote")
	}
	if q.Count == 0 || len(q.Entries) == 0 {
		return ErrEmptyBatch
	}
	if len(q.Entries) != q.Count {
		return fmt.Errorf("tpm: batch count %d but %d entries", q.Count, len(q.Entries))
	}
	if err := VerifyBatchSignature(aik, q); err != nil {
		return err
	}
	for i := range q.Entries {
		e := &q.Entries[i]
		leaf := BatchLeaf(e.Handle, e.Composite, e.Nonce)
		if !merkle.VerifyInclusion(leaf, e.Index, q.Count, e.Proof, q.Root) {
			return fmt.Errorf("tpm: batch entry %d (sePCR %d): inclusion proof invalid", i, e.Handle)
		}
	}
	return nil
}
