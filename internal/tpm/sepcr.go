package tpm

import (
	"fmt"

	"minimaltcb/internal/obs"
)

// This file implements the paper's proposed TPM extension (§5.4): a bank of
// secure-execution PCRs (sePCRs). Each concurrently executing PAL is bound
// to one sePCR at SLAUNCH time. A sePCR moves through three states:
//
//	Free      -> (SLAUNCH allocates, resets, extends)  -> Exclusive
//	Exclusive -> (SFREE: PAL terminated)               -> Quote
//	Quote     -> (TPM_Quote generated / TPM_SEPCR_Free) -> Free
//	Exclusive -> (SKILL: extend kill marker)           -> Free
//
// While Exclusive, only the bound PAL — identified to the TPM by the CPU
// hardware, modeled here as an owner token — may Extend, Seal to, or Unseal
// under the register. Untrusted code may quote a register in the Quote
// state, which is how attestations get generated after PAL exit (§5.4.3).

// SePCRState is the life-cycle state of one sePCR.
type SePCRState uint8

// sePCR states, in the paper's terminology.
const (
	SePCRFree SePCRState = iota
	SePCRExclusive
	SePCRQuote
)

// String renders the state name.
func (s SePCRState) String() string {
	switch s {
	case SePCRFree:
		return "Free"
	case SePCRExclusive:
		return "Exclusive"
	case SePCRQuote:
		return "Quote"
	}
	return fmt.Sprintf("SePCRState(%d)", uint8(s))
}

type sePCR struct {
	state SePCRState
	value Digest
	owner int // CPU-enforced binding token while Exclusive
}

// SKillMarker is the well-known constant extended into a sePCR when SKILL
// terminates a misbehaving PAL (§5.5), so a verifier can distinguish a
// killed PAL's register from a cleanly exited one.
var SKillMarker = Measure([]byte("TPM_SEPCR_SKILL"))

// lifeOpen starts the life-cycle span for sePCR h entering the named
// state. The span stays open across TPM commands — a register can sit in
// Exclusive for many scheduling slices — and is recorded on the next
// transition.
func (t *TPM) lifeOpen(h int, state string) {
	if t.trace == nil || t.sepcrLife == nil {
		return
	}
	t.sepcrLife[h] = t.trace.Start("sePCR."+state, obs.CatSePCR).AttrInt("handle", h)
}

// lifeClose ends the open life-cycle span of sePCR h, if any.
func (t *TPM) lifeClose(h int, attrs ...obs.Attr) {
	if t.trace == nil || t.sepcrLife == nil || t.sepcrLife[h] == nil {
		return
	}
	sp := t.sepcrLife[h]
	t.sepcrLife[h] = nil
	for _, a := range attrs {
		sp.Attr(a.Key, a.Val)
	}
	t.trace.End(sp)
}

// lifeFree marks the instant a register returns to the Free pool.
func (t *TPM) lifeFree(h int) {
	if t.trace == nil {
		return
	}
	t.trace.Event("sePCR.Free", obs.CatSePCR, obs.Int("handle", h))
}

// NumSePCRs returns how many sePCRs this TPM provisions.
func (t *TPM) NumSePCRs() int { return len(t.sePCRs) }

// SePCRStateOf reports the state of a sePCR handle.
func (t *TPM) SePCRStateOf(handle int) (SePCRState, error) {
	if handle < 0 || handle >= len(t.sePCRs) {
		return 0, fmt.Errorf("%w: %d", ErrSePCRHandle, handle)
	}
	return t.sePCRs[handle].state, nil
}

// SePCRValue returns the current register value (verifier/debug view).
func (t *TPM) SePCRValue(handle int) (Digest, error) {
	if handle < 0 || handle >= len(t.sePCRs) {
		return Digest{}, fmt.Errorf("%w: %d", ErrSePCRHandle, handle)
	}
	return t.sePCRs[handle].value, nil
}

// AllocateSePCR finds a Free sePCR, resets it to zero, extends the PAL
// measurement into it, binds it to owner (the launching CPU), and returns
// its handle. It fails with ErrNoSePCR when all registers are busy — the
// condition that makes SLAUNCH return a failure code (§5.4.1).
func (t *TPM) AllocateSePCR(owner int, palMeasurement Digest) (int, error) {
	if err := t.inject("TPM_SEPCR_Alloc"); err != nil {
		return -1, err
	}
	for i := range t.sePCRs {
		if t.sePCRs[i].state != SePCRFree {
			continue
		}
		sp := t.cmdSpan("TPM_SEPCR_Alloc").AttrInt("handle", i)
		t.sePCRs[i] = sePCR{
			state: SePCRExclusive,
			value: chain(Digest{}, palMeasurement),
			owner: owner,
		}
		t.charge(t.profile.ExtendLatency, 0)
		t.endCmd(sp, nil)
		t.lifeOpen(i, "Exclusive")
		t.auditEvent("sepcr_alloc", i, t.sePCRs[i].value)
		return i, nil
	}
	return -1, ErrNoSePCR
}

// checkExclusive validates handle, state and owner for PAL-only commands.
func (t *TPM) checkExclusive(handle, owner int) error {
	if handle < 0 || handle >= len(t.sePCRs) {
		return fmt.Errorf("%w: %d", ErrSePCRHandle, handle)
	}
	p := &t.sePCRs[handle]
	if p.state != SePCRExclusive {
		return fmt.Errorf("%w: sePCR %d is %v, need Exclusive", ErrSePCRState, handle, p.state)
	}
	if p.owner != owner {
		return fmt.Errorf("%w: sePCR %d bound to CPU%d, request from CPU%d",
			ErrSePCRState, handle, p.owner, owner)
	}
	return nil
}

// RebindSePCR moves the hardware binding to a new CPU when the untrusted OS
// resumes a PAL on a different core (§5.3: "the PAL may execute on a
// different CPU each time it is resumed"). Only the context-switch
// microcode calls this; the sePCR must be Exclusive.
func (t *TPM) RebindSePCR(handle, oldOwner, newOwner int) error {
	if err := t.checkExclusive(handle, oldOwner); err != nil {
		return err
	}
	t.sePCRs[handle].owner = newOwner
	return nil
}

// SePCRExtend extends a measurement into the PAL's own sePCR (e.g. of its
// inputs). Only the bound PAL may do this (§5.4.2).
func (t *TPM) SePCRExtend(handle, owner int, measurement Digest) (Digest, error) {
	if err := t.checkExclusive(handle, owner); err != nil {
		return Digest{}, err
	}
	if err := t.inject("TPM_SEPCR_Extend"); err != nil {
		return Digest{}, err
	}
	sp := t.cmdSpan("TPM_SEPCR_Extend").AttrInt("handle", handle)
	p := &t.sePCRs[handle]
	p.value = chain(p.value, measurement)
	t.busCommand(34, 30)
	t.charge(t.profile.ExtendLatency, t.profile.Jitter)
	t.endCmd(sp, nil)
	t.auditEvent("sepcr_extend", handle, p.value)
	return p.value, nil
}

// SealSePCR seals data such that it can only be unsealed by a PAL whose
// sePCR holds the same value — identity-bound rather than handle-bound, so
// the same PAL unseals successfully even if a later launch assigns it a
// different register (§5.4.4, Challenge 4).
func (t *TPM) SealSePCR(handle, owner int, data []byte) ([]byte, error) {
	if err := t.checkExclusive(handle, owner); err != nil {
		return nil, err
	}
	if err := t.inject("TPM_Seal"); err != nil {
		return nil, err
	}
	sp := t.cmdSpan("TPM_Seal").Attr("mode", "sepcr").AttrInt("bytes", len(data))
	release := t.sePCRs[handle].value
	blob, err := t.sealBlob(sealModeSePCR, nil, release, data)
	if err != nil {
		t.endCmd(sp, err)
		return nil, err
	}
	t.busCommand(64+len(data), len(blob))
	t.charge(t.sealCost(len(data)), t.profile.Jitter)
	t.endCmd(sp, nil)
	t.auditEvent("seal", handle, release)
	return blob, nil
}

// UnsealSePCR unseals a blob sealed with SealSePCR, provided the calling
// PAL's sePCR currently holds the value recorded at seal time.
func (t *TPM) UnsealSePCR(handle, owner int, blob []byte) ([]byte, error) {
	if err := t.checkExclusive(handle, owner); err != nil {
		return nil, err
	}
	mode, selBytes, release, ekey, nonce, ct, err := parseBlob(blob)
	if err != nil {
		return nil, err
	}
	if mode != sealModeSePCR {
		return nil, fmt.Errorf("%w: blob sealed to static PCRs; use Unseal", ErrBadBlob)
	}
	if err := t.inject("TPM_Unseal"); err != nil {
		return nil, err
	}
	sp := t.cmdSpan("TPM_Unseal").Attr("mode", "sepcr")
	t.busCommand(len(blob), 64)
	t.charge(t.profile.UnsealLatency, t.profile.Jitter)
	if !equalDigest(t.sePCRs[handle].value, release) {
		err := fmt.Errorf("%w: sePCR %x, sealed to %x",
			ErrPCRMismatch, t.sePCRs[handle].value, release)
		t.endCmd(sp, err)
		t.auditEvent("unseal_denied", handle, t.sePCRs[handle].value)
		return nil, err
	}
	pt, err := t.openBlob(mode, selBytes, release, ekey, nonce, ct)
	if err != nil {
		t.endCmd(sp, err)
		return nil, err
	}
	t.unsealOK++
	t.endCmd(sp, nil)
	t.auditEvent("unseal", handle, release)
	return pt, nil
}

// ReleaseSePCR transitions Exclusive -> Quote on clean PAL exit (SFREE,
// §5.5). Only the bound CPU's microcode may release.
func (t *TPM) ReleaseSePCR(handle, owner int) error {
	if err := t.checkExclusive(handle, owner); err != nil {
		return err
	}
	t.sePCRs[handle].state = SePCRQuote
	t.sePCRs[handle].owner = -1
	t.lifeClose(handle)
	t.lifeOpen(handle, "Quote")
	t.auditEvent("sepcr_release", handle, t.sePCRs[handle].value)
	return nil
}

// KillSePCR implements SKILL's TPM side (§5.5): extend the well-known kill
// marker and transition straight to Free. It accepts registers in
// Exclusive state regardless of owner — SKILL is issued by the OS against
// a suspended or wedged PAL, whose CPU binding may be stale.
func (t *TPM) KillSePCR(handle int) error {
	if handle < 0 || handle >= len(t.sePCRs) {
		return fmt.Errorf("%w: %d", ErrSePCRHandle, handle)
	}
	p := &t.sePCRs[handle]
	if p.state != SePCRExclusive {
		return fmt.Errorf("%w: sePCR %d is %v, SKILL needs Exclusive", ErrSePCRState, handle, p.state)
	}
	sp := t.cmdSpan("TPM_SEPCR_Kill").AttrInt("handle", handle)
	p.value = chain(p.value, SKillMarker)
	p.state = SePCRFree
	p.owner = -1
	t.charge(t.profile.ExtendLatency, 0)
	t.endCmd(sp, nil)
	t.lifeClose(handle, obs.Attr{Key: "killed", Val: "true"})
	t.lifeFree(handle)
	t.auditEvent("sepcr_kill", handle, p.value)
	return nil
}

// QuoteSePCR generates an attestation over a sePCR in the Quote state.
// Untrusted code calls this after PAL exit, passing the handle the PAL
// output (§5.4.3). The register transitions to Free afterwards.
func (t *TPM) QuoteSePCR(handle int, nonce []byte) (*Quote, error) {
	if handle < 0 || handle >= len(t.sePCRs) {
		return nil, fmt.Errorf("%w: %d", ErrSePCRHandle, handle)
	}
	p := &t.sePCRs[handle]
	if p.state != SePCRQuote {
		return nil, fmt.Errorf("%w: sePCR %d is %v, quote needs Quote state",
			ErrSePCRState, handle, p.state)
	}
	// The injection point sits before the signature: an injected quote
	// failure leaves the register in Quote, still attestable on retry.
	if err := t.inject("TPM_Quote"); err != nil {
		return nil, err
	}
	sp := t.cmdSpan("TPM_Quote").Attr("mode", "sepcr").AttrInt("handle", handle)
	sig, err := memoSignPKCS1v15(t.aik, quoteDigest(p.value, nonce))
	if err != nil {
		err = fmt.Errorf("tpm: sePCR quote signature: %w", err)
		t.endCmd(sp, err)
		return nil, err
	}
	q := &Quote{
		SePCRHandle: handle,
		Composite:   p.value,
		Nonce:       append([]byte(nil), nonce...),
		Signature:   sig,
	}
	p.state = SePCRFree
	p.value = Digest{}
	t.busCommand(40+len(nonce), len(sig)+40)
	t.charge(t.profile.QuoteLatency, t.profile.Jitter)
	t.endCmd(sp, nil)
	t.lifeClose(handle, obs.Attr{Key: "quoted", Val: "true"})
	t.lifeFree(handle)
	t.auditEvent("sepcr_quote", handle, q.Composite)
	return q, nil
}

// FreeSePCR implements TPM_SEPCR_Free (§5.4.3): untrusted code releases a
// register in the Quote state without generating an attestation.
func (t *TPM) FreeSePCR(handle int) error {
	if handle < 0 || handle >= len(t.sePCRs) {
		return fmt.Errorf("%w: %d", ErrSePCRHandle, handle)
	}
	p := &t.sePCRs[handle]
	if p.state != SePCRQuote {
		return fmt.Errorf("%w: sePCR %d is %v, TPM_SEPCR_Free needs Quote state",
			ErrSePCRState, handle, p.state)
	}
	released := p.value
	p.state = SePCRFree
	p.value = Digest{}
	t.lifeClose(handle)
	t.lifeFree(handle)
	t.auditEvent("sepcr_free", handle, released)
	return nil
}
