package tpm

import (
	"bytes"
	"testing"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/sim"
)

// FuzzUnseal feeds arbitrary bytes to the blob parser and unseal path: the
// TPM must never panic or, worse, release plaintext for a malformed blob.
func FuzzUnseal(f *testing.F) {
	clockChip := fuzzTPM(f)
	genuine, err := clockChip.Seal(Selection{0, 17}, []byte("fuzz secret"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("SEAL"))
	f.Add(genuine)
	trunc := genuine[:len(genuine)/2]
	f.Add(trunc)
	flipped := append([]byte(nil), genuine...)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, blob []byte) {
		pt, err := clockChip.Unseal(blob)
		if err != nil {
			return
		}
		// The only blob that may unseal is the genuine one.
		if !bytes.Equal(blob, genuine) {
			t.Fatalf("mutated blob unsealed to %q", pt)
		}
	})
}

func fuzzTPM(f *testing.F) *TPM {
	f.Helper()
	clock := sim.NewClock()
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := New(clock, bus, Config{KeyBits: 1024, Seed: 99})
	if err != nil {
		f.Fatal(err)
	}
	return chip
}
