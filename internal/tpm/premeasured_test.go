package tpm

import (
	"testing"
)

// Tests for HashDataPremeasured, the TPM_HASH_DATA variant the CPU's
// launch-measurement cache uses. The contract: the resulting PCR 17 is
// ALWAYS the same as the plain HashData path — the supplied digest is only
// trusted when it provably covers the whole buffered sequence.

func hashSequence(t *testing.T, chip *TPM, feed func(*TPM)) Digest {
	t.Helper()
	if err := chip.bus.SetLocality(4); err != nil {
		t.Fatal(err)
	}
	defer chip.bus.SetLocality(0)
	if err := chip.HashStart(); err != nil {
		t.Fatal(err)
	}
	feed(chip)
	pcr, err := chip.HashEnd()
	if err != nil {
		t.Fatal(err)
	}
	return pcr
}

func TestHashDataPremeasuredMatchesPlainPath(t *testing.T) {
	clock, p := newClockProfile()
	data := []byte("the SLB image crossing the LPC bus")
	plain := hashSequence(t, newProfiledTPM(t, clock, p), func(chip *TPM) {
		if err := chip.HashData(data); err != nil {
			t.Fatal(err)
		}
	})
	clock2, _ := newClockProfile()
	pre := hashSequence(t, newProfiledTPM(t, clock2, p), func(chip *TPM) {
		if err := chip.HashDataPremeasured(data, Measure(data)); err != nil {
			t.Fatal(err)
		}
	})
	if plain != pre {
		t.Fatalf("premeasured path changed PCR 17: %x vs %x", pre, plain)
	}
}

// TestHashDataPremeasuredWrongDigestOnlySequence documents the trust
// boundary: when the premeasured call is the entire sequence, the TPM takes
// the caller's word for the digest — that caller is launch microcode, and
// the launch cache validated the digest by full content compare. (The model
// cannot re-hash here without paying exactly the cost the cache removes.)
func TestHashDataPremeasuredWrongDigestOnlySequence(t *testing.T) {
	clock, p := newClockProfile()
	data := []byte("image bytes")
	wrong := Measure([]byte("different bytes"))
	pcr := hashSequence(t, newProfiledTPM(t, clock, p), func(chip *TPM) {
		if err := chip.HashDataPremeasured(data, wrong); err != nil {
			t.Fatal(err)
		}
	})
	if pcr != chain(Digest{}, wrong) {
		t.Fatal("only-sequence premeasured digest was not used verbatim")
	}
}

// TestHashDataPremeasuredMixedFallsBack: as soon as any other data shares
// the sequence, the shortcut is abandoned and the full buffer is hashed —
// a wrong supplied digest must have no effect on the PCR.
func TestHashDataPremeasuredMixedFallsBack(t *testing.T) {
	clock, p := newClockProfile()
	pre, post := []byte("header"), []byte("trailer")
	img := []byte("the image")
	wrong := Measure([]byte("lies"))

	want := hashSequence(t, newProfiledTPM(t, clock, p), func(chip *TPM) {
		for _, b := range [][]byte{pre, img, post} {
			if err := chip.HashData(b); err != nil {
				t.Fatal(err)
			}
		}
	})

	// Premeasured call after other data: digest must be ignored.
	clock2, _ := newClockProfile()
	got := hashSequence(t, newProfiledTPM(t, clock2, p), func(chip *TPM) {
		if err := chip.HashData(pre); err != nil {
			t.Fatal(err)
		}
		if err := chip.HashDataPremeasured(img, wrong); err != nil {
			t.Fatal(err)
		}
		if err := chip.HashData(post); err != nil {
			t.Fatal(err)
		}
	})
	if got != want {
		t.Fatal("premeasured digest leaked into a mixed sequence (data before)")
	}

	// Premeasured call before other data: length check must disarm it.
	clock3, _ := newClockProfile()
	got = hashSequence(t, newProfiledTPM(t, clock3, p), func(chip *TPM) {
		if err := chip.HashDataPremeasured(pre, wrong); err != nil {
			t.Fatal(err)
		}
		if err := chip.HashData(img); err != nil {
			t.Fatal(err)
		}
		if err := chip.HashData(post); err != nil {
			t.Fatal(err)
		}
	})
	want = hashSequence(t, newProfiledTPM(t, clock3, p), func(chip *TPM) {
		for _, b := range [][]byte{pre, img, post} {
			if err := chip.HashData(b); err != nil {
				t.Fatal(err)
			}
		}
	})
	if got != want {
		t.Fatal("premeasured digest leaked into a mixed sequence (data after)")
	}
}

// TestHashDataPremeasuredResetBetweenSequences: the known-digest flag must
// not survive HashEnd into the next sequence.
func TestHashDataPremeasuredResetBetweenSequences(t *testing.T) {
	clock, p := newClockProfile()
	chip := newProfiledTPM(t, clock, p)
	img := []byte("first image")
	_ = hashSequence(t, chip, func(chip *TPM) {
		if err := chip.HashDataPremeasured(img, Measure(img)); err != nil {
			t.Fatal(err)
		}
	})
	other := []byte("second image, plain path")
	got := hashSequence(t, chip, func(chip *TPM) {
		if err := chip.HashData(other); err != nil {
			t.Fatal(err)
		}
	})
	if got != chain(Digest{}, Measure(other)) {
		t.Fatal("stale premeasured digest affected the following sequence")
	}
}
