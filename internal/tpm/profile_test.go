package tpm

import (
	"testing"
	"time"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// The profiles must honour every numeric anchor the paper's text states.
func TestProfileAnchors(t *testing.T) {
	broadcom := ProfileBroadcom()
	infineon := ProfileInfineon()

	// Broadcom Seal: 11.39 ms minimal, 20.01 ms at the PAL Gen payload.
	if got := ms(broadcom.SealLatency(0)); got != 11.39 {
		t.Errorf("Broadcom minimal Seal = %.2f ms, want 11.39", got)
	}
	if got := ms(broadcom.SealLatency(SealGenPayload)); got != 20.01 {
		t.Errorf("Broadcom PAL-Gen Seal = %.2f ms, want 20.01", got)
	}
	// Infineon Unseal: 390.98 ms.
	if got := ms(infineon.UnsealLatency); got != 390.98 {
		t.Errorf("Infineon Unseal = %.2f ms, want 390.98", got)
	}
	// Infineon Seal adds 213 ms over Broadcom.
	delta := ms(infineon.SealLatency(SealGenPayload)) - ms(broadcom.SealLatency(SealGenPayload))
	if delta != 213 {
		t.Errorf("Infineon-Broadcom Seal delta = %.2f ms, want 213", delta)
	}
	// Broadcom (Quote+Unseal) exceeds Infineon's by 1132 ms.
	delta = ms(broadcom.QuoteLatency+broadcom.UnsealLatency) -
		ms(infineon.QuoteLatency+infineon.UnsealLatency)
	if delta != 1132 {
		t.Errorf("Quote+Unseal delta = %.2f ms, want 1132", delta)
	}
}

func TestBroadcomSlowestQuoteAndUnseal(t *testing.T) {
	broadcom := ProfileBroadcom()
	for _, p := range Profiles() {
		if p.Name == broadcom.Name {
			continue
		}
		if p.QuoteLatency >= broadcom.QuoteLatency {
			t.Errorf("%s Quote (%v) >= Broadcom (%v)", p.Name, p.QuoteLatency, broadcom.QuoteLatency)
		}
		if p.UnsealLatency >= broadcom.UnsealLatency {
			t.Errorf("%s Unseal (%v) >= Broadcom (%v)", p.Name, p.UnsealLatency, broadcom.UnsealLatency)
		}
	}
}

func TestBroadcomFastestSeal(t *testing.T) {
	broadcom := ProfileBroadcom()
	for _, p := range Profiles() {
		if p.Name == broadcom.Name {
			continue
		}
		if p.SealLatency(SealGenPayload) <= broadcom.SealLatency(SealGenPayload) {
			t.Errorf("%s Seal not slower than Broadcom's", p.Name)
		}
	}
}

func TestInfineonBestAverage(t *testing.T) {
	infineon := ProfileInfineon()
	for _, p := range Profiles() {
		if p.Name == infineon.Name {
			continue
		}
		if p.FigureAverage() <= infineon.FigureAverage() {
			t.Errorf("%s average (%v) <= Infineon (%v)",
				p.Name, p.FigureAverage(), infineon.FigureAverage())
		}
	}
}

func TestProfilesHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if p.Name == "" {
			t.Fatal("unnamed profile")
		}
		if seen[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if len(seen) != 4 {
		t.Fatalf("%d profiles, want 4 (Figure 3's legend)", len(seen))
	}
}

func TestZeroProfileIsFree(t *testing.T) {
	var p Profile
	if !p.IsZero() {
		t.Fatal("zero profile not IsZero")
	}
	if ProfileBroadcom().IsZero() {
		t.Fatal("Broadcom profile IsZero")
	}
	if p.SealLatency(1<<20) != 0 || p.RandomLatency(128) != 0 {
		t.Fatal("zero profile charges time")
	}
}

// Figure-2 arithmetic: PAL Gen on the Broadcom ≈ 200 ms of TPM cost
// (Seal only; SKINIT is charged by the bus), PAL Use ≈ >1 s with the
// 905 ms Unseal.
func TestFigure2TPMComponents(t *testing.T) {
	b := ProfileBroadcom()
	gen := b.SealLatency(SealGenPayload)
	if gen < 15*time.Millisecond || gen > 25*time.Millisecond {
		t.Fatalf("PAL Gen seal component = %v", gen)
	}
	use := b.UnsealLatency + b.SealLatency(SealGenPayload)
	if use < 900*time.Millisecond || use > 950*time.Millisecond {
		t.Fatalf("PAL Use TPM component = %v", use)
	}
}
