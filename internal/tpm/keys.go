package tpm

import (
	"crypto/rsa"
	"sync"

	"minimaltcb/internal/sim"
)

// Key generation is the one genuinely expensive computation in the software
// TPM: a 2048-bit RSA pair takes real CPU time. Experiments construct many
// platforms with the same seed, so generated pairs are cached per
// (seed, bits). The cache also keeps experiments deterministic: the same
// seed always names the same SRK and AIK.
var (
	keyCacheMu sync.Mutex
	keyCache   = map[keyCacheKey]keyPair{}
)

type keyCacheKey struct {
	seed uint64
	bits int
}

type keyPair struct {
	srk, aik *rsa.PrivateKey
}

func keysForSeed(seed uint64, bits int) (srk, aik *rsa.PrivateKey, err error) {
	keyCacheMu.Lock()
	defer keyCacheMu.Unlock()
	k := keyCacheKey{seed, bits}
	if pair, ok := keyCache[k]; ok {
		return pair.srk, pair.aik, nil
	}
	// Domain-separated deterministic streams for the two keys.
	srk, err = rsa.GenerateKey(sim.NewRNG(seed^0x53524b00), bits)
	if err != nil {
		return nil, nil, err
	}
	aik, err = rsa.GenerateKey(sim.NewRNG(seed^0x41494b00), bits)
	if err != nil {
		return nil, nil, err
	}
	keyCache[k] = keyPair{srk, aik}
	return srk, aik, nil
}
