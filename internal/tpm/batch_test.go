package tpm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/merkle"
)

// quoteReady allocates, extends and releases n registers so each sits in
// the Quote state, returning one BatchRequest per register with a distinct
// per-job nonce.
func quoteReady(t *testing.T, chip *TPM, n int) []BatchRequest {
	t.Helper()
	reqs := make([]BatchRequest, n)
	for i := 0; i < n; i++ {
		h, err := chip.AllocateSePCR(i, Measure([]byte(fmt.Sprintf("pal-%d", i))))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := chip.SePCRExtend(h, i, Measure([]byte(fmt.Sprintf("input-%d", i)))); err != nil {
			t.Fatal(err)
		}
		if err := chip.ReleaseSePCR(h, i); err != nil {
			t.Fatal(err)
		}
		reqs[i] = BatchRequest{Handle: h, Nonce: []byte(fmt.Sprintf("job-nonce-%d", i))}
	}
	return reqs
}

func TestQuoteBatchRoundTrip(t *testing.T) {
	chip := sePCRTPM(t, 8)
	reqs := quoteReady(t, chip, 5)
	q, err := chip.QuoteSePCRBatch(reqs, []byte("batch-nonce"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Count != 5 || len(q.Entries) != 5 {
		t.Fatalf("count=%d entries=%d, want 5", q.Count, len(q.Entries))
	}
	if err := VerifyBatchQuote(chip.AIKPublic(), q); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	// Every register is consumed.
	for _, r := range reqs {
		if st, _ := chip.SePCRStateOf(r.Handle); st != SePCRFree {
			t.Fatalf("sePCR %d = %v after batch quote, want Free", r.Handle, st)
		}
	}
}

func TestQuoteBatchTamperMatrix(t *testing.T) {
	chip := sePCRTPM(t, 8)
	q, err := chip.QuoteSePCRBatch(quoteReady(t, chip, 4), []byte("bn"), 0)
	if err != nil {
		t.Fatal(err)
	}
	pub := chip.AIKPublic()

	// Bit-flipped inclusion proof.
	mut := *q
	mut.Entries = append([]BatchEntry(nil), q.Entries...)
	e0 := mut.Entries[0]
	e0.Proof = append([]merkle.Hash(nil), e0.Proof...)
	e0.Proof[0][0] ^= 0x80
	mut.Entries[0] = e0
	if VerifyBatchQuote(pub, &mut) == nil {
		t.Fatal("bit-flipped proof accepted")
	}

	// Proof for the wrong job: entry 1 presented with entry 2's proof and
	// index.
	mut = *q
	mut.Entries = append([]BatchEntry(nil), q.Entries...)
	wrong := mut.Entries[1]
	wrong.Proof = q.Entries[2].Proof
	wrong.Index = q.Entries[2].Index
	mut.Entries[1] = wrong
	if VerifyBatchQuote(pub, &mut) == nil {
		t.Fatal("wrong-job proof accepted")
	}

	// Tampered composite: proof no longer matches the leaf.
	mut = *q
	mut.Entries = append([]BatchEntry(nil), q.Entries...)
	forged := mut.Entries[3]
	forged.Composite[0] ^= 0xff
	mut.Entries[3] = forged
	if VerifyBatchQuote(pub, &mut) == nil {
		t.Fatal("forged composite accepted")
	}

	// Tampered root: the signature check must fail.
	mut = *q
	mut.Root[0] ^= 0x01
	if VerifyBatchQuote(pub, &mut) == nil {
		t.Fatal("forged root accepted")
	}

	// Replayed batch nonce mismatch: different nonce, same signature.
	mut = *q
	mut.Nonce = []byte("other-nonce")
	if VerifyBatchQuote(pub, &mut) == nil {
		t.Fatal("nonce-substituted batch accepted")
	}
}

func TestQuoteBatchEmptyAndDuplicates(t *testing.T) {
	chip := sePCRTPM(t, 4)
	if _, err := chip.QuoteSePCRBatch(nil, []byte("bn"), 0); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: err = %v, want ErrEmptyBatch", err)
	}
	if err := VerifyBatchQuote(chip.AIKPublic(), &BatchQuote{}); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("verify empty batch: err = %v, want ErrEmptyBatch", err)
	}
	reqs := quoteReady(t, chip, 1)
	dup := []BatchRequest{reqs[0], reqs[0]}
	if _, err := chip.QuoteSePCRBatch(dup, []byte("bn"), 0); !errors.Is(err, ErrSePCRState) {
		t.Fatalf("duplicate handle: err = %v, want ErrSePCRState", err)
	}
	// The rejected batch consumed nothing.
	if st, _ := chip.SePCRStateOf(reqs[0].Handle); st != SePCRQuote {
		t.Fatalf("sePCR %d = %v after rejected batch, want Quote", reqs[0].Handle, st)
	}
}

// TestQuoteBatchOfOneEquivalence: a batch of one attests exactly what a
// plain quote over the same register would — same composite, empty proof,
// leaf == root — and both verify under the same AIK.
func TestQuoteBatchOfOneEquivalence(t *testing.T) {
	chip := sePCRTPM(t, 4)

	// Two registers prepared identically (same PAL, same extend).
	prep := func(owner int) int {
		h, err := chip.AllocateSePCR(owner, Measure([]byte("same-pal")))
		if err != nil {
			t.Fatal(err)
		}
		if err := chip.ReleaseSePCR(h, owner); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := prep(0), prep(1)
	v1, _ := chip.SePCRValue(h1)
	v2, _ := chip.SePCRValue(h2)
	if v1 != v2 {
		t.Fatal("identically prepared registers differ")
	}

	nonce := []byte("the-nonce")
	plain, err := chip.QuoteSePCR(h1, nonce)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := chip.QuoteSePCRBatch([]BatchRequest{{Handle: h2, Nonce: nonce}}, []byte("bn"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Count != 1 || len(batch.Entries) != 1 {
		t.Fatal("batch of one has wrong shape")
	}
	e := batch.Entries[0]
	if e.Composite != plain.Composite {
		t.Fatalf("batch composite %x != plain composite %x", e.Composite, plain.Composite)
	}
	if len(e.Proof) != 0 {
		t.Fatalf("single-leaf proof must be empty, got %d nodes", len(e.Proof))
	}
	if batch.Root != BatchLeaf(e.Handle, e.Composite, e.Nonce) {
		t.Fatal("single-leaf root must equal the leaf")
	}
	if err := VerifyQuote(chip.AIKPublic(), plain); err != nil {
		t.Fatal(err)
	}
	if err := VerifyBatchQuote(chip.AIKPublic(), batch); err != nil {
		t.Fatal(err)
	}
}

// failOnce fails the first matching TPM command, then passes.
type failOnce struct {
	cmd   string
	fired bool
}

func (f *failOnce) TPMCommand(name string) (time.Duration, error) {
	if name == f.cmd && !f.fired {
		f.fired = true
		return 0, errors.New("injected")
	}
	return 0, nil
}

// TestQuoteBatchFailureLeavesRegistersAttestable: a batch that fails
// mid-flight consumes nothing — every register stays in Quote and the
// retry succeeds. This is the batch-wide mirror of the one-shot path's
// retry contract.
func TestQuoteBatchFailureLeavesRegistersAttestable(t *testing.T) {
	chip := sePCRTPM(t, 8)
	reqs := quoteReady(t, chip, 3)
	chip.SetFault(&failOnce{cmd: "TPM_Quote"})
	if _, err := chip.QuoteSePCRBatch(reqs, []byte("bn"), 0); err == nil {
		t.Fatal("injected failure did not surface")
	}
	for _, r := range reqs {
		if st, _ := chip.SePCRStateOf(r.Handle); st != SePCRQuote {
			t.Fatalf("sePCR %d = %v after failed batch, want Quote", r.Handle, st)
		}
	}
	q, err := chip.QuoteSePCRBatch(reqs, []byte("bn"), 0)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if err := VerifyBatchQuote(chip.AIKPublic(), q); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteSessionMAC(t *testing.T) {
	chip := sePCRTPM(t, 8)
	sess, err := chip.OpenQuoteSession([]byte("session-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	// The grant is signed by the AIK over the session binding.
	if err := memoVerifyPKCS1v15(chip.AIKPublic(),
		SessionGrantDigest(sess.ID, sess.Key, sess.Nonce), sess.Sig); err != nil {
		t.Fatalf("session grant signature invalid: %v", err)
	}

	q, err := chip.QuoteSePCRBatch(quoteReady(t, chip, 2), []byte("bn"), sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if q.SessionID != sess.ID || len(q.SessionMAC) == 0 {
		t.Fatal("sessionful batch missing session binding")
	}
	want := SessionMAC(sess.Key, BatchSignedDigest(q.Root, q.Count, q.Nonce))
	if !bytes.Equal(q.SessionMAC, want) {
		t.Fatal("session MAC mismatch")
	}
	var otherKey Digest
	otherKey[3] = 0xee
	if bytes.Equal(q.SessionMAC, SessionMAC(otherKey, BatchSignedDigest(q.Root, q.Count, q.Nonce))) {
		t.Fatal("MAC did not depend on the key")
	}

	// Unknown session.
	if _, err := chip.QuoteSePCRBatch(quoteReady(t, chip, 1), []byte("bn"), 9999); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown session: err = %v, want ErrUnknownSession", err)
	}

	// Reboot wipes sessions.
	chip.Boot()
	if _, err := chip.QuoteSePCRBatch(quoteReady(t, chip, 1), []byte("bn"), sess.ID); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("post-reboot session: err = %v, want ErrUnknownSession", err)
	}
}

// TestQuoteBatchAmortizedCharge pins the batch's virtual-time claim: N
// registers quoted as a batch cost one QuoteLatency plus N-1 ExtendLatency,
// strictly less than N plain quotes.
func TestQuoteBatchAmortizedCharge(t *testing.T) {
	clock, profile := newClockProfile()
	profile.Jitter = 0
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := New(clock, bus, Config{KeyBits: 1024, Profile: profile, NumSePCRs: 8})
	if err != nil {
		t.Fatal(err)
	}
	reqs := quoteReady(t, chip, 4)
	start := clock.Now()
	if _, err := chip.QuoteSePCRBatch(reqs, []byte("bn"), 0); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now() - start
	want := profile.QuoteLatency + 3*profile.ExtendLatency
	// Bus transfer time rides on top; it must stay well under one extra
	// QuoteLatency, or the amortization claim is void.
	if elapsed < want || elapsed >= want+profile.QuoteLatency {
		t.Fatalf("batch of 4 charged %v, want ~%v (4 plain quotes would be %v)",
			elapsed, want, 4*profile.QuoteLatency)
	}
}
