// Package tpm implements the software Trusted Platform Module the
// simulation platform exposes over its LPC bus.
//
// The implementation covers the TPM v1.2 subset the paper exercises —
// static and dynamic PCRs with locality-gated reset, Extend/PCRRead, the
// TPM_HASH_START / TPM_HASH_DATA / TPM_HASH_END sequence driven by late
// launch, Seal/Unseal bound to PCR composites (real 2048-bit RSA under a
// hybrid AES-GCM envelope), Quote (real RSA signatures by an Attestation
// Identity Key), and GetRandom — plus the paper's proposed secure-execution
// PCRs (sePCRs) with their Exclusive/Quote/Free life cycle (§5.4).
//
// Cryptographic behaviour is real (hash chains verify, quotes check against
// the AIK, unsealing under the wrong PCR values fails); *latency* comes from
// per-vendor timing profiles calibrated to Figure 3 of the paper and is
// charged to the platform's virtual clock.
package tpm

import (
	"bytes"
	"crypto/rsa"
	"crypto/sha1"
	"errors"
	"fmt"
	"time"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/sim"
)

// NumPCRs is the number of platform configuration registers. PCRs 0–16 are
// static (reset only by reboot); FirstDynamicPCR–23 are dynamic.
const NumPCRs = 24

// FirstDynamicPCR is the index of the first dynamic (resettable) PCR.
const FirstDynamicPCR = 17

// DigestSize is the size of a PCR and of every measurement (SHA-1).
const DigestSize = sha1.Size

// Digest is a SHA-1 digest, the TPM v1.2 measurement unit.
type Digest [DigestSize]byte

// Measure hashes arbitrary bytes into a measurement.
func Measure(b []byte) Digest { return sha1.Sum(b) }

// Errors returned by TPM commands.
var (
	ErrBadPCR        = errors.New("tpm: PCR index out of range")
	ErrLocality      = errors.New("tpm: command not permitted at current locality")
	ErrNotHashing    = errors.New("tpm: no TPM_HASH_START in progress")
	ErrAlreadyHashed = errors.New("tpm: TPM_HASH_START already in progress")
	ErrPCRMismatch   = errors.New("tpm: PCR values do not match sealed blob")
	ErrBadBlob       = errors.New("tpm: malformed sealed blob")
	ErrNoSePCR       = errors.New("tpm: no free sePCR available")
	ErrSePCRState    = errors.New("tpm: sePCR in wrong state for command")
	ErrSePCRHandle   = errors.New("tpm: invalid sePCR handle")
)

// TPM is one TPM chip instance.
type TPM struct {
	clock   *sim.Clock
	bus     *lpc.Bus
	profile Profile
	seed    uint64
	rng     *sim.RNG

	pcrs [NumPCRs]Digest

	srk *rsa.PrivateKey // Storage Root Key (seals)
	aik *rsa.PrivateKey // Attestation Identity Key (quotes)

	hashing  bool
	hashBuf  []byte
	hashBufP *[]byte // pooled backing for hashBuf while a hash is open
	// Premeasured fast path (HashDataPremeasured): the caller-supplied
	// digest is used by HashEnd iff that call's bytes were the sequence's
	// only data.
	hashKnown    Digest
	hashKnownLen int
	hashKnownSet bool
	booted       bool
	extends      int // statistics: number of Extend operations served
	unsealOK     int // statistics: successful unseals

	sePCRs []sePCR

	// Quote sessions (batch.go): per-session HMAC keys bound to the AIK
	// by a signed grant. Wiped on Boot, like authorization sessions in
	// real TPMs.
	sessions   map[uint64]Digest
	sessionSeq uint64

	// trace, when set, records a dual-timestamp span per TPM command and
	// a life-cycle span per sePCR state (internal/obs). sepcrLife holds
	// the open life-cycle span of each register.
	trace     *obs.Scope
	sepcrLife []*obs.Span

	// fault, when set, is consulted before every fallible command; nil
	// (the default) costs one pointer check per command.
	fault FaultHook

	// audit, when set, observes trust-relevant state transitions (sePCR
	// life cycle, seal/unseal, late launch) for the tamper-evident audit
	// log; nil (the default) costs one pointer check per transition.
	audit AuditHook
}

// FaultHook intercepts TPM commands for fault injection (internal/chaos).
// It is consulted once per fallible command with the command name, and may
// charge an extra stall against the chip's clock and/or fail the command
// before it takes effect. Cleanup commands — TPM_SEPCR_Free, TPM_SEPCR_Kill,
// ReleaseSePCR — are never intercepted, so recovery paths cannot be made to
// leak registers.
type FaultHook interface {
	TPMCommand(name string) (stall time.Duration, err error)
}

// SetFault installs (or with nil removes) the chip's fault hook.
func (t *TPM) SetFault(h FaultHook) { t.fault = h }

// inject consults the fault hook for one command. A returned stall is
// charged to the virtual clock whether or not the command also fails —
// a glitching chip is slow first, broken second.
func (t *TPM) inject(name string) error {
	if t.fault == nil {
		return nil
	}
	stall, err := t.fault.TPMCommand(name)
	if stall > 0 {
		t.clock.Advance(stall)
	}
	if err != nil {
		return fmt.Errorf("tpm: %s: %w", name, err)
	}
	return nil
}

// SetTrace wires an observability scope into the chip: every command span
// and sePCR life-cycle transition is recorded against it. A nil scope
// disables tracing (the default).
func (t *TPM) SetTrace(s *obs.Scope) {
	t.trace = s
	if s != nil && t.sepcrLife == nil {
		t.sepcrLife = make([]*obs.Span, len(t.sePCRs))
	}
}

// cmdSpan opens a span for one TPM command; endCmd closes it, noting the
// error if the command failed. Both are no-ops without a scope.
func (t *TPM) cmdSpan(name string) *obs.Span { return t.trace.Start(name, "tpm") }

func (t *TPM) endCmd(sp *obs.Span, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.Attr("error", err.Error())
	}
	t.trace.End(sp)
}

// Config configures a TPM instance.
type Config struct {
	// Profile selects the vendor timing model. Zero value means free
	// (zero-latency) operations, useful for functional tests.
	Profile Profile
	// Seed makes all TPM-internal randomness (GetRandom output, key
	// generation, timing jitter) reproducible.
	Seed uint64
	// KeyBits sets the RSA modulus size for the SRK and AIK. 0 means
	// 2048, the size the paper's TPMs use. Tests may choose 1024 or 512
	// for speed; key generation results are cached per (seed, bits).
	KeyBits int
	// NumSePCRs is how many secure-execution PCRs to provision. 0 means
	// none: a stock 2007 TPM. The paper's recommendation sizes this to
	// the desired concurrent-PAL limit.
	NumSePCRs int
}

// New creates a TPM attached to the given clock and bus, performs the
// equivalent of a power-on (TPM_Startup(ST_CLEAR)), and generates its keys.
func New(clock *sim.Clock, bus *lpc.Bus, cfg Config) (*TPM, error) {
	bits := cfg.KeyBits
	if bits == 0 {
		bits = 2048
	}
	srk, aik, err := keysForSeed(cfg.Seed, bits)
	if err != nil {
		return nil, fmt.Errorf("tpm: key generation: %w", err)
	}
	t := &TPM{
		clock:   clock,
		bus:     bus,
		profile: cfg.Profile,
		seed:    cfg.Seed,
		srk:     srk,
		aik:     aik,
		sePCRs:  make([]sePCR, cfg.NumSePCRs),
	}
	t.Boot()
	return t, nil
}

// Boot performs the power-on PCR initialization: static PCRs reset to zero,
// dynamic PCRs to all-ones (-1), so a verifier can distinguish "rebooted"
// from "dynamically reset" (§2.1.3).
func (t *TPM) Boot() {
	// Power-on also restarts the chip's deterministic RNG from its seed:
	// a rebooted simulated TPM replays the exact randomness stream of its
	// first boot. This is what makes replay deterministic — and lets the
	// experiments reboot and reuse a machine bit-identically to building
	// a fresh one. (The seed is domain-separated from key generation.)
	t.rng = sim.NewRNG(t.seed ^ 0x7049_4d53_494d_5450)
	for i := range t.pcrs {
		if i >= FirstDynamicPCR {
			for j := range t.pcrs[i] {
				t.pcrs[i][j] = 0xff
			}
		} else {
			t.pcrs[i] = Digest{}
		}
	}
	t.hashing = false
	t.releaseHashBuf()
	t.booted = true
	for i := range t.sePCRs {
		t.sePCRs[i] = sePCR{state: SePCRFree}
	}
	// Power-on abandons any open sePCR life-cycle spans unrecorded, and
	// wipes quote sessions — a rebooted chip cannot MAC for keys minted
	// before the reboot.
	for i := range t.sepcrLife {
		t.sepcrLife[i] = nil
	}
	t.sessions = nil
}

// Profile returns the timing profile.
func (t *TPM) Profile() Profile { return t.profile }

// AIKPublic returns the public half of the Attestation Identity Key, which
// a Privacy CA certifies and verifiers use to check quotes.
func (t *TPM) AIKPublic() *rsa.PublicKey { return &t.aik.PublicKey }

// SRKPublic returns the public half of the Storage Root Key.
func (t *TPM) SRKPublic() *rsa.PublicKey { return &t.srk.PublicKey }

// charge advances virtual time by d plus profile jitter, never negative.
func (t *TPM) charge(d, jitter time.Duration) {
	if d <= 0 && jitter <= 0 {
		return
	}
	total := d
	if jitter > 0 {
		total += time.Duration(float64(jitter) * t.rng.NormFloat64())
	}
	if total < 0 {
		total = 0
	}
	t.clock.Advance(total)
}

// busCommand charges LPC framing for a command exchange if a bus is wired.
func (t *TPM) busCommand(req, resp int) {
	if t.bus != nil {
		t.bus.Command(req, resp)
	}
}

// PCRValue returns the current value of a PCR without charging time (a
// debug/verifier view, not a TPM command).
func (t *TPM) PCRValue(idx int) (Digest, error) {
	if idx < 0 || idx >= NumPCRs {
		return Digest{}, fmt.Errorf("%w: %d", ErrBadPCR, idx)
	}
	return t.pcrs[idx], nil
}

// PCRRead executes TPM_PCRRead: returns the PCR value and charges the
// (small) command latency.
func (t *TPM) PCRRead(idx int) (Digest, error) {
	v, err := t.PCRValue(idx)
	if err != nil {
		return Digest{}, err
	}
	t.busCommand(14, 30)
	t.charge(t.profile.ReadLatency, 0)
	return v, nil
}

// Extend executes TPM_Extend: pcr <- SHA1(pcr || measurement), the
// append-only accumulation of §2.1.1.
func (t *TPM) Extend(idx int, measurement Digest) (Digest, error) {
	if idx < 0 || idx >= NumPCRs {
		return Digest{}, fmt.Errorf("%w: %d", ErrBadPCR, idx)
	}
	if err := t.inject("TPM_Extend"); err != nil {
		return Digest{}, err
	}
	sp := t.cmdSpan("TPM_Extend").AttrInt("pcr", idx)
	t.pcrs[idx] = chain(t.pcrs[idx], measurement)
	t.extends++
	t.busCommand(34, 30)
	t.charge(t.profile.ExtendLatency, t.profile.Jitter)
	t.endCmd(sp, nil)
	return t.pcrs[idx], nil
}

// chain computes the PCR extend function H(old || new). The concatenation
// fits a stack buffer, so extends stay allocation-free.
func chain(old, measurement Digest) Digest {
	var buf [2 * DigestSize]byte
	copy(buf[:DigestSize], old[:])
	copy(buf[DigestSize:], measurement[:])
	return sha1.Sum(buf[:])
}

// Extends returns how many TPM_Extend commands the chip has served.
func (t *TPM) Extends() int { return t.extends }

// ExtendMicrocode performs the semantic PCR extension issued from late
// launch microcode (the ACMod's PCR 18 extension during SENTER). Its
// latency is part of the calibrated launch constants rather than the
// vendor's TPM_Extend profile, so no separate time is charged here.
func (t *TPM) ExtendMicrocode(idx int, measurement Digest) (Digest, error) {
	if idx < 0 || idx >= NumPCRs {
		return Digest{}, fmt.Errorf("%w: %d", ErrBadPCR, idx)
	}
	t.pcrs[idx] = chain(t.pcrs[idx], measurement)
	return t.pcrs[idx], nil
}

// HashStart executes TPM_HASH_START. Only the CPU may issue it, which the
// bus encodes as locality 4; software cannot reset PCR 17 (§2.1.3). The
// dynamic PCRs reset to zero and the hash buffer opens.
func (t *TPM) HashStart() error {
	if t.bus != nil && t.bus.Locality() != 4 {
		return fmt.Errorf("%w: TPM_HASH_START needs locality 4, have %d",
			ErrLocality, t.bus.Locality())
	}
	if t.hashing {
		return ErrAlreadyHashed
	}
	for i := FirstDynamicPCR; i < NumPCRs; i++ {
		t.pcrs[i] = Digest{}
	}
	t.hashing = true
	t.hashKnownSet = false
	if t.hashBufP == nil {
		t.hashBufP = hashBufPool.Get().(*[]byte)
	}
	t.hashBuf = (*t.hashBufP)[:0]
	return nil
}

// releaseHashBuf returns the pooled TPM_HASH_DATA buffer, if held.
func (t *TPM) releaseHashBuf() {
	if t.hashBufP != nil {
		*t.hashBufP = t.hashBuf[:0]
		hashBufPool.Put(t.hashBufP)
		t.hashBufP = nil
	}
	t.hashBuf = nil
}

// HashData executes TPM_HASH_DATA, appending bytes to the open hash. The
// LPC transfer cost is charged by the caller (CPU microcode) via
// Bus.TransferHash, since the long-wait behaviour lives on the bus.
func (t *TPM) HashData(b []byte) error {
	if !t.hashing {
		return ErrNotHashing
	}
	t.hashBuf = append(t.hashBuf, b...)
	return nil
}

// HashDataPremeasured is HashData for a caller that already knows SHA-1
// of b (the CPU's launch-measurement cache). The bytes still enter the
// buffered sequence — the model's state is unchanged — but if b turns out
// to be the sequence's only data, HashEnd reuses d instead of re-hashing
// the buffer. Mixing with other HashData calls quietly falls back to the
// full hash, so the fast path can never change a PCR value.
func (t *TPM) HashDataPremeasured(b []byte, d Digest) error {
	if !t.hashing {
		return ErrNotHashing
	}
	if len(t.hashBuf) == 0 {
		t.hashKnown = d
		t.hashKnownLen = len(b)
		t.hashKnownSet = true
	}
	t.hashBuf = append(t.hashBuf, b...)
	return nil
}

// HashEnd executes TPM_HASH_END: the buffered bytes are hashed and the
// digest extended into PCR 17. It returns the resulting PCR 17 value.
func (t *TPM) HashEnd() (Digest, error) {
	if !t.hashing {
		return Digest{}, ErrNotHashing
	}
	t.hashing = false
	var meas Digest
	if t.hashKnownSet && len(t.hashBuf) == t.hashKnownLen {
		meas = t.hashKnown
	} else {
		meas = Measure(t.hashBuf)
	}
	t.hashKnownSet = false
	t.releaseHashBuf()
	t.pcrs[FirstDynamicPCR] = chain(Digest{}, meas)
	t.auditEvent("late_launch", -1, t.pcrs[FirstDynamicPCR])
	return t.pcrs[FirstDynamicPCR], nil
}

// GetRandom executes TPM_GetRandom, returning n bytes from the TPM's RNG.
func (t *TPM) GetRandom(n int) ([]byte, error) {
	if n < 0 {
		return nil, errors.New("tpm: negative GetRandom length")
	}
	if err := t.inject("TPM_GetRandom"); err != nil {
		return nil, err
	}
	sp := t.cmdSpan("TPM_GetRandom").AttrInt("bytes", n)
	out := make([]byte, n)
	t.rng.Fill(out)
	t.busCommand(14, 10+n)
	t.charge(t.profile.RandomBase+time.Duration(n)*t.profile.RandomPerByte,
		t.profile.Jitter)
	t.endCmd(sp, nil)
	return out, nil
}

// Selection names a set of PCRs (by index) a seal or quote covers.
type Selection []int

// Composite computes the TPM_COMPOSITE_HASH over the selected PCRs: a
// SHA-1 over the encoded selection and the concatenated register values.
func (t *TPM) Composite(sel Selection) (Digest, error) {
	vals := make([]Digest, len(sel))
	for i, idx := range sel {
		if idx < 0 || idx >= NumPCRs {
			return Digest{}, fmt.Errorf("%w: %d", ErrBadPCR, idx)
		}
		vals[i] = t.pcrs[idx]
	}
	return CompositeDigest(sel, vals), nil
}

// CompositeDigest computes the composite hash for a selection and the
// corresponding register values. Verifiers use it to reconstruct the
// composite they expect from a replayed event log, without access to the
// TPM itself.
func CompositeDigest(sel Selection, vals []Digest) Digest {
	var buf [512]byte
	b := buf[:0]
	for i, idx := range sel {
		b = append(b, byte(idx))
		b = append(b, vals[i][:]...)
	}
	return sha1.Sum(b)
}

// ExtendDigest computes the PCR extend function H(old || measurement)
// outside the TPM — the replay primitive for verifiers.
func ExtendDigest(old, measurement Digest) Digest { return chain(old, measurement) }

// equalDigest is constant-time-ish comparison; timing attacks are out of
// scope (§3.2) but bytes.Equal reads naturally here.
func equalDigest(a, b Digest) bool { return bytes.Equal(a[:], b[:]) }
