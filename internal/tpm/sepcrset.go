package tpm

import (
	"fmt"
)

// This file implements the sePCR *sets* extension (§6): instead of a
// one-to-one binding, a PAL may be bound to a group of registers allocated
// and released together. Per the paper, operations index the extension at
// three granularities: the whole set (allocation/reset at SLAUNCH), a
// subset (TPM_Quote), and individual registers (TPM_Extend, which the
// existing SePCRExtend already provides).

// AllocateSePCRSet allocates k Free registers as one set: all reset, the
// first extended with the PAL measurement, all bound to owner. On
// shortfall nothing is allocated and ErrNoSePCR is returned.
func (t *TPM) AllocateSePCRSet(owner int, palMeasurement Digest, k int) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tpm: sePCR set size %d", k)
	}
	var handles []int
	for i := range t.sePCRs {
		if t.sePCRs[i].state == SePCRFree {
			handles = append(handles, i)
			if len(handles) == k {
				break
			}
		}
	}
	if len(handles) < k {
		return nil, fmt.Errorf("%w: set of %d requested, %d free", ErrNoSePCR, k, len(handles))
	}
	for j, h := range handles {
		value := Digest{}
		if j == 0 {
			value = chain(Digest{}, palMeasurement)
		}
		t.sePCRs[h] = sePCR{state: SePCRExclusive, value: value, owner: owner}
	}
	t.charge(t.profile.ExtendLatency, 0)
	return handles, nil
}

// ReleaseSePCRSet transitions every register of the set Exclusive -> Quote
// on clean PAL exit. The whole set must be owned by the caller; on any
// mismatch nothing transitions.
func (t *TPM) ReleaseSePCRSet(handles []int, owner int) error {
	for _, h := range handles {
		if err := t.checkExclusive(h, owner); err != nil {
			return err
		}
	}
	for _, h := range handles {
		t.sePCRs[h].state = SePCRQuote
		t.sePCRs[h].owner = -1
	}
	return nil
}

// QuoteSePCRSet attests a subset of a released set in one signature: the
// composite covers the selected registers' values in handle order. All
// quoted registers transition to Free; unquoted set members stay in the
// Quote state for a later quote or TPM_SEPCR_Free.
func (t *TPM) QuoteSePCRSet(handles []int, nonce []byte) (*Quote, error) {
	if len(handles) == 0 {
		return nil, fmt.Errorf("tpm: empty sePCR subset")
	}
	vals := make([]Digest, len(handles))
	for i, h := range handles {
		if h < 0 || h >= len(t.sePCRs) {
			return nil, fmt.Errorf("%w: %d", ErrSePCRHandle, h)
		}
		if t.sePCRs[h].state != SePCRQuote {
			return nil, fmt.Errorf("%w: sePCR %d is %v, set quote needs Quote state",
				ErrSePCRState, h, t.sePCRs[h].state)
		}
		vals[i] = t.sePCRs[h].value
	}
	sel := make(Selection, len(handles))
	copy(sel, handles)
	composite := CompositeDigest(sel, vals)
	sig, err := memoSignPKCS1v15(t.aik, quoteDigest(composite, nonce))
	if err != nil {
		return nil, fmt.Errorf("tpm: sePCR set quote signature: %w", err)
	}
	for _, h := range handles {
		t.sePCRs[h].state = SePCRFree
		t.sePCRs[h].value = Digest{}
	}
	t.busCommand(40+len(nonce)+len(handles), len(sig)+40)
	t.charge(t.profile.QuoteLatency, t.profile.Jitter)
	return &Quote{
		Selection:   sel,
		SePCRHandle: handles[0],
		Composite:   composite,
		Nonce:       append([]byte(nil), nonce...),
		Signature:   sig,
	}, nil
}
