// Threat-model suite: each test is one capability §3.2 grants the
// adversary, driven end to end against the platform. The per-package tests
// check mechanisms; these check the paper's security story.
package main

import (
	"errors"
	"testing"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/chipset"
	"minimaltcb/internal/core"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/tpm"
)

const victimPAL = `
	ldi	r0, key
	ldi	r1, 32
	svc	5		; generate a secret
	ldi	r0, key
	ldi	r1, 32
	ldi	r2, blob
	svc	3		; seal it to this code
	mov	r1, r0
	ldi	r0, blob
	svc	6
	; wipe before exit
	ldi	r0, key
	ldi	r1, 0
	ldi	r2, 32
w:	storeb	r1, [r0]
	addi	r0, 1
	addi	r2, -1
	ldi	r3, 0
	cmp	r2, r3
	jnz	w
	ldi	r0, 0
	svc	0
key:	.space 32
blob:	.space 1024
stack:	.space 64
`

// Capability: "he can invoke the SKINIT or SENTER instruction with
// arguments of its choosing". The attacker late launches his own code and
// hands it the victim's sealed blob: the TPM measured *his* code, so the
// unseal policy refuses, and any attestation he produces names his code.
func TestAttackerControlledLateLaunch(t *testing.T) {
	sys, err := core.NewSystem(fast(platform.HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := core.CompilePAL("victim", victimPAL)
	res, err := sys.RunLegacy(victim, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := res.Output

	attacker, _ := core.CompilePAL("attacker", `
		ldi	r0, blob
		ldi	r1, 1024
		svc	7
		mov	r1, r0
		ldi	r0, blob
		ldi	r2, out
		svc	4		; try to unseal the victim's secret
		mov	r0, r1		; exit status = unseal status
		svc	0
	blob:	.space 1024
	out:	.space 64
	stack:	.space 32
	`)
	ares, err := sys.RunLegacy(attacker, blob)
	if err != nil {
		t.Fatal(err)
	}
	if ares.ExitStatus == 0 {
		t.Fatal("attacker's late launch unsealed the victim's secret")
	}

	// The attestation of the attacker's session cannot be passed off as
	// the victim: the quoted PCR17 holds the attacker's measurement.
	nonce := []byte("tm nonce 1")
	q, _, err := sys.SEA.Quote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	sys.Verifier.Approve(victim.Name, victim.Measurement())
	forgedLog := attest.Log{{PCR: 17, Description: "victim", Measurement: victim.Measurement()}}
	if _, err := sys.Verifier.VerifyPALQuote(sys.Cert, q, forgedLog, nonce); err == nil {
		t.Fatal("attacker session attested as the victim")
	}
}

// Capability: ring-0 code on another core while a PAL executes
// (recommended hardware; on 2007 hardware the whole platform is halted).
func TestRing0NeighborDuringExecution(t *testing.T) {
	sys, err := core.NewSystem(fast(platform.Recommended(platform.HPdc5750(), 2)))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := core.CompilePAL("target", "svc 1\nldi r0, 0\nsvc 0")
	secb, err := sys.SKSM.NewSECB(p.Image, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	core1 := sys.Machine.CPUs[1]
	if err := sys.SKSM.SLAUNCH(core1, secb); err != nil {
		t.Fatal(err)
	}
	// While executing: the "OS" on core 0 probes PAL memory and the SECB.
	cs := sys.Machine.Chipset
	if _, err := cs.CPURead(0, secb.Region.Base, 64); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("OS read executing PAL: %v", err)
	}
	if err := cs.CPUWrite(0, secb.Region.Base+8, []byte{0xcc}); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("OS patched executing PAL code: %v", err)
	}
	if _, err := cs.CPURead(0, secb.SECBRegion.Base, 16); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("OS read the SECB: %v", err)
	}
	// Drive it to completion and clean up.
	if _, err := core1.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := sys.SKSM.Suspend(core1, secb); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SKSM.RunSlice(core1, secb); err != nil {
		t.Fatal(err)
	}
}

// Capability: "a DMA-capable Ethernet card with access to the PCI bus".
func TestDMACardAgainstBothArchitectures(t *testing.T) {
	// 2007 hardware: DEV protects the measured SLB during the session.
	sys, err := core.NewSystem(fast(platform.HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	nic := chipset.NewDevice("pci-nic", sys.Machine.Chipset)
	p, _ := core.CompilePAL("dev-covered", "ldi r0, 0\nsvc 0")
	region, err := sys.Kernel.PlaceImage(p.Image.Bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Machine.LateLaunch(sys.Machine.BootCPU(), region.Base); err != nil {
		t.Fatal(err)
	}
	if _, err := nic.Read(region.Base, 32); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("DMA into DEV-protected SLB: %v", err)
	}
	sys.Machine.Chipset.SetDEVRegion(region, false)
	sys.Kernel.ReleaseRegion(region)

	// Recommended hardware: the access-control table covers executing
	// and suspended PALs alike (exercised in TestDMAAttackDuringSession).
}

// Capability: power cycling. A reboot resets the dynamic PCRs to -1 so a
// verifier can tell nothing was launched, and sealed state only returns
// after a genuine relaunch of the same code.
func TestPowerCycling(t *testing.T) {
	sys, err := core.NewSystem(fast(platform.HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := core.CompilePAL("victim", victimPAL)
	res, err := sys.RunLegacy(victim, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := res.Output

	chip := sys.Machine.TPM()
	chip.Boot() // power cycle

	// Post-reboot, PCR17 is -1: direct unseal fails.
	if _, err := chip.Unseal(blob); err == nil {
		t.Fatal("sealed state released after reboot without a launch")
	}
	// A quote straight after reboot cannot claim a launch happened.
	nonce := []byte("tm nonce reboot")
	q, err := chip.QuoteCommand(tpm.Selection{17}, nonce)
	if err != nil {
		t.Fatal(err)
	}
	sys.Verifier.Approve(victim.Name, victim.Measurement())
	log := attest.Log{{PCR: 17, Description: "victim", Measurement: victim.Measurement()}}
	if _, err := sys.Verifier.VerifyPALQuote(sys.Cert, q, log, nonce); err == nil {
		t.Fatal("reboot-state quote verified as a launch")
	}

	// Genuine relaunch of the same code: the secret flows again. Consume
	// the blob with a PAL Use-style unseal via a fresh session.
	consumer, _ := core.CompilePAL("victim", victimPAL) // same bytes
	if _, err := sys.RunLegacy(consumer, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := chip.Unseal(blob); err != nil {
		t.Fatalf("same code cannot unseal after relaunch: %v", err)
	}
}

// Capability: replaying a previously captured attestation. Nonce tracking
// in the verifier forces freshness.
func TestQuoteReplay(t *testing.T) {
	sys, err := core.NewSystem(fast(platform.HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := core.CompilePAL("fresh", "ldi r0, 0\nsvc 0")
	if _, err := sys.RunLegacy(p, nil); err != nil {
		t.Fatal(err)
	}
	nonce := []byte("tm nonce replay")
	q, _, err := sys.SEA.Quote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	sys.Verifier.Approve(p.Name, p.Measurement())
	log := attest.Log{{PCR: 17, Description: p.Name, Measurement: p.Measurement()}}
	if _, err := sys.Verifier.VerifyPALQuote(sys.Cert, q, log, nonce); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Verifier.VerifyPALQuote(sys.Cert, q, log, nonce); !errors.Is(err, attest.ErrNonceReplay) {
		t.Fatalf("replayed quote: %v", err)
	}
}
