module minimaltcb

go 1.22
