// Cross-module integration tests: whole-system flows that span the
// untrusted OS, late-launch microcode, TPM, both execution runtimes and
// the external verifier. The per-package unit tests live next to each
// module; these tests are the end-to-end stories.
package main

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/chipset"
	"minimaltcb/internal/core"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/tpm"
)

func fast(p platform.Profile) platform.Profile {
	p.KeyBits = 1024
	return p
}

const echoPAL = `
	ldi	r0, buf
	ldi	r1, 256
	svc	7		; read input
	mov	r1, r0
	ldi	r0, buf
	svc	6		; echo it back
	ldi	r0, 0
	svc	0
buf:	.space 256
stack:	.space 64
`

// TestEndToEndAllPlatforms runs the same PAL on every measured machine
// with a TPM, on its native late-launch flavour, and attests the run.
func TestEndToEndAllPlatforms(t *testing.T) {
	for _, prof := range platform.AllMeasured() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			sys, err := core.NewSystem(fast(prof))
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.CompilePAL("echo", echoPAL)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.RunLegacy(p, []byte("ping"))
			if err != nil {
				t.Fatal(err)
			}
			if string(res.Output) != "ping" {
				t.Fatalf("output %q", res.Output)
			}
			if !prof.HasTPM {
				return
			}
			name, _, err := sys.AttestLegacy(p, []byte("nonce-"+prof.Name))
			if err != nil {
				t.Fatal(err)
			}
			if name != "echo" {
				t.Fatalf("attested %q", name)
			}
		})
	}
}

// TestSealedStateSurvivesAcrossRuntimes seals state under a PAL's identity
// on stock hardware and confirms the same identity — and only it — governs
// release, mirroring the paper's claim that the sealing policy is the PAL
// measurement, not the execution mechanism.
func TestSealedStateCrossSession(t *testing.T) {
	sys, err := core.NewSystem(fast(platform.HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := core.CompilePAL("sealer", `
		ldi	r0, data
		ldi	r1, 8
		ldi	r2, blob
		svc	3
		mov	r1, r0
		ldi	r0, blob
		svc	6
		ldi	r0, 0
		svc	0
	data:	.ascii "8 bytes!"
	blob:	.space 512
	stack:	.space 64
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunLegacy(sealer, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := res.Output

	unsealSrc := `
		ldi	r0, blob
		ldi	r1, 512
		svc	7
		mov	r1, r0
		ldi	r0, blob
		ldi	r2, data
		svc	4
		mov	r0, r1
		svc	0
	data:	.space 64
	blob:	.space 512
	stack:	.space 64
	`
	// A different PAL (different bytes => different measurement) fails.
	other, err := core.CompilePAL("other", unsealSrc)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := sys.RunLegacy(other, blob)
	if err != nil {
		t.Fatal(err)
	}
	if ores.ExitStatus == 0 {
		t.Fatal("different PAL unsealed the blob")
	}
}

// TestDMAAttackDuringSession drives a malicious DMA device at a PAL's
// memory while the PAL holds secrets, across both execution models.
func TestDMAAttackDuringSession(t *testing.T) {
	// Recommended hardware: PAL suspended with pages in NONE.
	sys, err := core.NewSystem(fast(platform.Recommended(platform.HPdc5750(), 2)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.CompilePAL("secretive", `
		ldi	r0, secret
		svc	1		; yield holding a secret
		ldi	r0, 0
		svc	0
	secret:	.ascii "k3y material"
	stack:	.space 64
	`)
	if err != nil {
		t.Fatal(err)
	}
	secb, err := sys.SKSM.NewSECB(p.Image, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	core1 := sys.Machine.CPUs[1]
	if _, err := sys.SKSM.RunSlice(core1, secb); err != nil {
		t.Fatal(err)
	}
	nic := chipset.NewDevice("evil-nic", sys.Machine.Chipset)
	if _, err := nic.Read(secb.Region.Base, 64); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("DMA read of suspended PAL: %v", err)
	}
	if err := nic.Write(secb.Region.Base, make([]byte, 64)); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("DMA write of suspended PAL: %v", err)
	}
	// Finish cleanly.
	if _, err := sys.SKSM.RunSlice(core1, secb); err != nil {
		t.Fatal(err)
	}
}

// TestAttestationDistinguishesPALs runs two different PALs back to back
// and confirms each quote only verifies against its own identity.
func TestAttestationDistinguishesPALs(t *testing.T) {
	sys, err := core.NewSystem(fast(platform.HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := core.CompilePAL("pal-a", "ldi r0, 0\nsvc 0")
	bPal, _ := core.CompilePAL("pal-b", "ldi r0, 1\nsvc 0\nnop")

	if _, err := sys.RunLegacy(a, nil); err != nil {
		t.Fatal(err)
	}
	qa, _, err := sys.SEA.Quote([]byte("qa"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunLegacy(bPal, nil); err != nil {
		t.Fatal(err)
	}

	sys.Verifier.Approve(a.Name, a.Measurement())
	sys.Verifier.Approve(bPal.Name, bPal.Measurement())

	// Quote taken during A's reign verifies as A...
	logA := attest.Log{{PCR: 17, Description: "a", Measurement: a.Measurement()}}
	name, err := sys.Verifier.VerifyPALQuote(sys.Cert, qa, logA, []byte("qa"))
	if err != nil || name != "pal-a" {
		t.Fatalf("quote A: %q %v", name, err)
	}
	// ...and cannot be passed off as B.
	logB := attest.Log{{PCR: 17, Description: "b", Measurement: bPal.Measurement()}}
	if _, err := sys.Verifier.VerifyPALQuote(sys.Cert, qa, logB, []byte("qa2")); err == nil {
		t.Fatal("A's quote verified with B's log")
	}
}

// TestRecommendedMultiprogrammingEndToEnd runs several resumable PALs
// concurrently through the core API's building blocks and attests each.
func TestRecommendedMultiprogrammingEndToEnd(t *testing.T) {
	prof := fast(platform.Recommended(platform.HPdc5750(), 4))
	prof.NumCPUs = 4
	sys, err := core.NewSystem(prof)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.CompilePAL("ticker", `
		ldi	r0, 0
		ldi	r2, 3
	loop:	addi	r0, 1
		svc	1
		cmp	r0, r2
		jnz	loop
		ldi	r1, out
		store	r0, [r1]
		ldi	r0, out
		ldi	r1, 4
		svc	6
		ldi	r0, 0
		svc	0
	out:	.word 0
	stack:	.space 64
	`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		nonce := []byte{byte(i), 'n'}
		res, err := sys.RunRecommended(p, nil, 0, nonce)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) != 4 || binary.LittleEndian.Uint32(res.Output) != 3 {
			t.Fatalf("run %d output %x", i, res.Output)
		}
		if res.Resumes < 2 {
			t.Fatalf("run %d resumes %d", i, res.Resumes)
		}
		name, err := sys.VerifyRecommended(p, res, nonce)
		if err != nil || name != "ticker" {
			t.Fatalf("run %d attested %q %v", i, name, err)
		}
	}
}

// TestVirtualTimeConsistency checks that a full SEA session's virtual time
// is the sum of its parts — no unaccounted gaps or double charging.
func TestVirtualTimeConsistency(t *testing.T) {
	sys, err := core.NewSystem(fast(platform.HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := core.CompilePAL("x", "ldi r0, 0\nsvc 0")
	before := sys.Machine.Clock.Now()
	res, err := sys.RunLegacy(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := sys.Machine.Clock.Now() - before
	if res.Total != elapsed {
		t.Fatalf("session total %v but clock advanced %v", res.Total, elapsed)
	}
	var sum time.Duration
	for _, d := range res.Breakdown {
		sum += d
	}
	// Breakdown covers launch + exec (+ TPM ops); the remainder is the
	// OS suspend/resume and image placement, which must be small.
	if gap := res.Total - sum; gap < 0 || gap > time.Millisecond {
		t.Fatalf("unaccounted time %v (total %v, phases %v)", gap, res.Total, sum)
	}
}

// TestStockHardwareCannotRunSLAUNCH confirms the recommended instructions
// are truly gated on the new TPM capability.
func TestStockHardwareCannotRunSLAUNCH(t *testing.T) {
	sys, err := core.NewSystem(fast(platform.HPdc5750()))
	if err != nil {
		t.Fatal(err)
	}
	if sys.SKSM != nil {
		t.Fatal("stock platform exposes recommended hardware")
	}
	_ = tpm.Digest{}
}
