// Command palrouter fronts a fleet of palservd backends with the same
// length-prefixed wire protocol they speak themselves: tenants dial the
// router exactly as they would a single palservd, and the router shards
// jobs across the fleet with consistent-hash placement keyed by image
// measurement, bounded work stealing when a shard saturates, and
// cluster-wide shed_load only when every live backend has rejected (see
// internal/cluster and docs/CLUSTER.md).
//
// Usage:
//
//	palrouter -backends host1:7080,host2:7080,host3:7080 [-addr 127.0.0.1:7090]
//	    Route jobs across an existing fleet until killed.
//
//	palrouter -spawn 3 [-machines N] [-sepcrs K] [-chaos-profile soak] ...
//	    Self-host N in-process palservd backends on ephemeral ports and
//	    route across them — the one-command cluster demo and the shape
//	    `make cluster-soak` exercises. The palservd-mirroring flags
//	    (-machines, -sepcrs, -workers, -queue, -quantum, -keybits, -seed,
//	    -deadline, -reject, -chaos-profile, -chaos-seed) configure each
//	    spawned backend.
//
//	palrouter ... -debug 127.0.0.1:7091
//	    Serve /metrics (cluster counters + p50/p95/p99 latency quantiles,
//	    per-backend routing counters), /healthz, and /debug/cluster (full
//	    JSON snapshot: ring membership, per-backend state/health/stats).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/chaos"
	"minimaltcb/internal/cluster"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/palsvc"
	"minimaltcb/internal/platform"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7090", "listen address for the tenant-facing wire protocol")
		backends    = flag.String("backends", "", "comma-separated palservd backend addresses")
		spawn       = flag.Int("spawn", 0, "self-host this many in-process palservd backends on ephemeral ports (instead of -backends)")
		vnodes      = flag.Int("vnodes", 0, "consistent-hash virtual nodes per backend (0 = default 64)")
		steal       = flag.Int("steal", 0, "work-stealing depth: extra ring successors to try after the primary (0 = whole ring, -1 = disable)")
		pool        = flag.Int("pool", 8, "idle-connection pool size per backend")
		dialTimeout = flag.Duration("dial-timeout", 2*time.Second, "backend dial + handshake timeout")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per forwarded request deadline (wedged-backend failover lever)")
		probeEvery  = flag.Duration("probe-interval", 100*time.Millisecond, "health-prober period per backend")
		probeFails  = flag.Int("probe-fails", 3, "consecutive transport failures before a backend is drained from the ring")
		connTimeout = flag.Duration("conn-timeout", 30*time.Second, "per-request deadline on tenant connections (0 = none)")
		debugAddr   = flag.String("debug", "", "debug HTTP listen address for /metrics, /healthz, /debug/cluster, /debug/trace, /debug/slo (\"\" disables)")
		trace       = flag.Bool("trace", false, "record routing spans and propagate trace context to backends (implied by -debug); spawned backends get tracers too, so the trace wire op answers a stitched cluster dump")

		sloObjective = flag.Float64("slo-objective", 0.99, "SLO good-request objective for per-tenant burn-rate accounting")
		sloTarget    = flag.Duration("slo-target", 250*time.Millisecond, "SLO latency target: slower answers count against the error budget (<0 disables)")
		auditDir     = flag.String("audit-dir", "", "persist the router's tamper-evident audit log under this directory (spawned backends log under <dir>/backend-N); query the fleet with tcbaudit -stitch")

		// Spawned-backend flags, mirroring palservd.
		machines   = flag.Int("machines", 1, "spawn: platform replicas per backend")
		sePCRs     = flag.Int("sepcrs", 8, "spawn: sePCR bank size per replica")
		workers    = flag.Int("workers", 0, "spawn: worker-pool size per backend (0 = 2x total bank)")
		queueDepth = flag.Int("queue", 64, "spawn: submission-queue depth per backend")
		quantum    = flag.Duration("quantum", 0, "spawn: SLAUNCH preemption quantum (0 = run to completion)")
		keyBits    = flag.Int("keybits", 1024, "spawn: RSA modulus size for each simulated TPM/CA")
		seed       = flag.Uint64("seed", 42, "spawn: platform randomness seed (backend i uses seed+i)")
		deadline   = flag.Duration("deadline", 0, "spawn: default per-job deadline (0 = none)")
		reject     = flag.Bool("reject", false, "spawn: reject (not queue) jobs when a backend's sePCR bank is exhausted")

		chaosProfile = flag.String("chaos-profile", "", "spawn: fault-injection profile per backend (see palservd)")
		chaosSeed    = flag.Uint64("chaos-seed", 0, "spawn: fault-injection seed (backend i derives seed+i; 0 = from time)")
	)
	flag.Parse()

	if err := run(routerOpts{
		addr: *addr, backends: *backends, spawn: *spawn,
		vnodes: *vnodes, steal: *steal, pool: *pool,
		dialTimeout: *dialTimeout, reqTimeout: *reqTimeout,
		probeEvery: *probeEvery, probeFails: *probeFails,
		connTimeout: *connTimeout, debugAddr: *debugAddr,
		trace:        *trace || *debugAddr != "",
		sloObjective: *sloObjective, sloTarget: *sloTarget,
		auditDir: *auditDir,
		machines: *machines, sePCRs: *sePCRs, workers: *workers,
		queueDepth: *queueDepth, quantum: *quantum, keyBits: *keyBits,
		seed: *seed, deadline: *deadline, reject: *reject,
		chaosProfile: *chaosProfile, chaosSeed: *chaosSeed,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "palrouter: %v\n", err)
		os.Exit(1)
	}
}

type routerOpts struct {
	addr, backends          string
	spawn                   int
	vnodes, steal, pool     int
	dialTimeout, reqTimeout time.Duration
	probeEvery              time.Duration
	probeFails              int
	connTimeout             time.Duration
	debugAddr               string
	trace                   bool
	sloObjective            float64
	sloTarget               time.Duration
	auditDir                string
	machines, sePCRs        int
	workers, queueDepth     int
	quantum                 time.Duration
	keyBits                 int
	seed                    uint64
	deadline                time.Duration
	reject                  bool
	chaosProfile            string
	chaosSeed               uint64
}

func run(o routerOpts) error {
	addrs, cleanup, err := resolveBackends(o)
	if err != nil {
		return err
	}
	defer cleanup()

	reg := obs.NewRegistry()
	health := &obs.Health{}
	var tracer *obs.Tracer
	if o.trace {
		// The router's node epoch keeps its span IDs distinct from every
		// backend's inside one stitched cluster trace.
		tracer = obs.NewTracer(0)
		tracer.SetNode(obs.NewNodeID())
		obs.RegisterTracerMetrics(reg, tracer)
	}
	slo := obs.NewSLOTracker(obs.SLOConfig{Objective: o.sloObjective, LatencyTarget: o.sloTarget})
	// The router's own log holds control-plane events (cluster-wide sheds)
	// under unsigned heads — there is no TPM at the routing tier; signed
	// per-node heads come from the backends via the audit wire op. Closed
	// after the router drains so the final head covers every event.
	var alog *audit.Log
	if o.auditDir != "" {
		alog, err = audit.Open(audit.Config{Dir: o.auditDir, Node: "palrouter"})
		if err != nil {
			return err
		}
		defer alog.Close()
		alog.BindRegistry(reg)
		fmt.Printf("palrouter: audit log in %s\n", o.auditDir)
	}
	r, err := cluster.New(cluster.Config{
		Backends:       addrs,
		VNodes:         o.vnodes,
		StealDepth:     o.steal,
		PoolSize:       o.pool,
		DialTimeout:    o.dialTimeout,
		RequestTimeout: o.reqTimeout,
		ProbeInterval:  o.probeEvery,
		ProbeFails:     o.probeFails,
		Registry:       reg,
		Tracer:         tracer,
		SLO:            slo,
		Audit:          alog,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	if o.debugAddr != "" {
		extras := []obs.Endpoint{
			{Path: "/debug/cluster", Desc: "cluster snapshot: ring, per-backend state/health/stats (JSON)",
				Handler: r.DebugHandler()},
			{Path: "/debug/slo", Desc: "per-tenant SLO burn rates and latency quantiles (JSON)",
				Handler: slo.Handler()},
		}
		if alog != nil {
			extras = append(extras, obs.Endpoint{
				Path: "/debug/audit", Desc: "router-side tamper-evident audit log (JSON; ?tenant=&trace=&image=&since=&n=)",
				Handler: alog.Handler(),
			})
		}
		srv, err := obs.ListenAndServeDebug(o.debugAddr, obs.NewDebugMux(reg, tracer, health, extras...))
		if err != nil {
			return err
		}
		defer srv.Close()
		defer health.Fail("palrouter shutting down")
		fmt.Printf("palrouter: debug server on http://%s (/metrics /healthz /debug/cluster /debug/trace /debug/slo)\n", srv.Addr())
	}

	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("palrouter: routing across %d backend(s): %s\n", len(addrs), strings.Join(addrs, ", "))
	fmt.Printf("palrouter: serving PAL jobs on %s\n", l.Addr())
	stopping := shutdownOnSignal(l, "palrouter")
	err = r.Serve(l, o.connTimeout)
	if stopping.Load() {
		return nil
	}
	return err
}

// shutdownOnSignal closes l on SIGINT/SIGTERM so the blocking Serve
// returns and the deferred closers run — the router's own audit log and
// every spawned backend's must seal a final head covering the whole tail
// rather than dying mid-segment with an unprovable suffix.
func shutdownOnSignal(l net.Listener, name string) *atomic.Bool {
	var stopping atomic.Bool
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		stopping.Store(true)
		fmt.Printf("%s: %v — shutting down\n", name, sig)
		l.Close()
	}()
	return &stopping
}

// resolveBackends either parses -backends or spawns -spawn in-process
// palservd services on ephemeral loopback ports; the returned cleanup
// closes whatever was spawned.
func resolveBackends(o routerOpts) (addrs []string, cleanup func(), err error) {
	cleanup = func() {}
	if o.spawn <= 0 {
		if o.backends == "" {
			return nil, cleanup, fmt.Errorf("need -backends or -spawn")
		}
		for _, a := range strings.Split(o.backends, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, cleanup, fmt.Errorf("-backends parsed to an empty list")
		}
		return addrs, cleanup, nil
	}

	var closers []func()
	cleanup = func() {
		for _, c := range closers {
			c()
		}
	}
	for i := 0; i < o.spawn; i++ {
		prof := platform.Recommended(platform.HPdc5750(), o.sePCRs)
		prof.KeyBits = o.keyBits
		prof.Seed = o.seed + uint64(i)
		cfg := palsvc.Config{
			Profile:         prof,
			Machines:        o.machines,
			Workers:         o.workers,
			QueueDepth:      o.queueDepth,
			Quantum:         o.quantum,
			DefaultDeadline: o.deadline,
		}
		if o.reject {
			cfg.Admission = palsvc.AdmitReject
		}
		if o.trace {
			// Each spawned backend records into its own ring under its own
			// node epoch — exactly what separate palservd processes would
			// do — so the router's trace op stitches them the same way.
			bt := obs.NewTracer(0)
			bt.SetNode(obs.NewNodeID())
			cfg.Tracer = bt
		}
		if o.auditDir != "" {
			// Per-backend logs in subdirectories, each with its own
			// AIK-signed heads — the same layout separate palservd
			// processes given distinct -audit-dir values would produce.
			node := fmt.Sprintf("backend-%d", i)
			blog, berr := audit.Open(audit.Config{
				Dir: o.auditDir + "/" + node, Node: node,
			})
			if berr != nil {
				cleanup()
				return nil, func() {}, berr
			}
			cfg.Audit = blog
		}
		if o.chaosProfile != "" {
			p, perr := chaos.ParseProfile(o.chaosProfile)
			if perr != nil {
				cleanup()
				return nil, func() {}, perr
			}
			if p.Enabled() {
				cseed := o.chaosSeed
				if cseed == 0 {
					cseed = uint64(time.Now().UnixNano())
				}
				cseed += uint64(i)
				cfg.Chaos = chaos.New(cseed, p)
				cfg.Retry = palsvc.DefaultRetryPolicy()
				cfg.Supervisor = palsvc.DefaultSupervisorPolicy()
				fmt.Printf("palrouter: backend %d chaos profile [%v] seed %d\n", i, p, cseed)
			}
		}
		s, serr := palsvc.New(cfg)
		if serr != nil {
			cfg.Audit.Close()
			cleanup()
			return nil, func() {}, fmt.Errorf("spawning backend %d: %w", i, serr)
		}
		l, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			s.Close()
			cfg.Audit.Close()
			cleanup()
			return nil, func() {}, lerr
		}
		// The audit log closes after the service drains, so the final
		// signed head covers the backend's last event.
		blog := cfg.Audit
		closers = append(closers, func() { _ = l.Close(); s.Close(); blog.Close() })
		go func() { _ = s.Serve(l, o.connTimeout) }()
		addrs = append(addrs, l.Addr().String())
		fmt.Printf("palrouter: spawned backend %d on %s (bank %d)\n", i, l.Addr(), s.Bank())
	}
	return addrs, cleanup, nil
}
