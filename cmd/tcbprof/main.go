// Command tcbprof renders the PAL execution stack's virtual-cycle
// profiles and fault flight-recorder bundles offline.
//
// The profile is exact, not sampled: the simulated CPU attributes every
// charged virtual nanosecond to the retiring instruction, so the listings
// here are cycle-accurate by construction. Input is the JSON served at
// /debug/profile or written by palservd -profile-out; crash input is the
// crashes.jsonl written by palservd -crash-dir (or a /debug/crashes save).
//
// Usage:
//
//	tcbprof [-f profile.json] [-top N]
//	    Print the per-tenant totals, the compiled-vs-interpreted tier
//	    split (cycles retired inside threaded-code blocks vs. by the
//	    interpreter), and the N hottest basic blocks across all images
//	    (default 10).
//
//	tcbprof -f profile.json -annotate <image-hash-prefix>
//	    Print the annotated disassembly of matching image(s): per-line
//	    virtual cycles, retirement counts, and a heat column, plus the
//	    image's service-call table.
//
//	tcbprof -f profile.json -folded
//	    Print folded stacks (image;block;pc count), the input format of
//	    flamegraph.pl and compatible viewers. Counts are virtual ns.
//
//	tcbprof -crash crashes.jsonl [-crash-id N]
//	    Render recorded fault bundles: saved registers, region layout,
//	    sePCR bank, memory-ownership map, hot PCs, and the trace tail.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"minimaltcb/internal/obs/prof"
)

func main() {
	var (
		file     = flag.String("f", "", "profile JSON file (default: stdin)")
		top      = flag.Int("top", 10, "number of hot blocks to show in the default view")
		annotate = flag.String("annotate", "", "print annotated disassembly of image(s) whose hash starts with this prefix (\"all\" = every image)")
		folded   = flag.Bool("folded", false, "print folded stacks for flamegraph tools")
		crash    = flag.String("crash", "", "render crash bundles from this crashes.jsonl instead of a profile")
		crashID  = flag.Uint64("crash-id", 0, "render only the bundle with this ID (0 = all)")
	)
	flag.Parse()

	if *crash != "" {
		if err := renderCrashes(os.Stdout, *crash, *crashID); err != nil {
			fail(err)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	p, err := prof.ReadProfile(in)
	if err != nil {
		fail(err)
	}
	// A freshly parsed profile already carries blocks/totals, but re-finish
	// so hand-merged or truncated inputs still render consistently.
	p.Finish()

	switch {
	case *folded:
		err = p.WriteFolded(os.Stdout)
	case *annotate != "":
		err = renderAnnotated(os.Stdout, p, *annotate)
	default:
		if len(p.Images) == 0 && len(p.Tenants) == 0 {
			fmt.Println("tcbprof: empty profile")
			return
		}
		p.WriteSummary(os.Stdout, *top)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tcbprof: %v\n", err)
	os.Exit(1)
}

// renderAnnotated prints the annotated disassembly of every image whose
// hash starts with prefix ("all" matches everything).
func renderAnnotated(w io.Writer, p *prof.Profile, prefix string) error {
	n := 0
	for _, ip := range p.Images {
		if prefix != "all" && !strings.HasPrefix(ip.Hash, prefix) {
			continue
		}
		if n > 0 {
			fmt.Fprintln(w)
		}
		if err := ip.WriteAnnotated(w); err != nil {
			return err
		}
		n++
	}
	if n == 0 {
		return fmt.Errorf("no image matches %q (profile has %d image(s))", prefix, len(p.Images))
	}
	return nil
}

// renderCrashes reads a crashes.jsonl and prints the human view of each
// bundle (or just the one selected with -crash-id).
func renderCrashes(w io.Writer, path string, id uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bundles, err := prof.ReadCrashes(f)
	if err != nil {
		return err
	}
	n := 0
	for _, b := range bundles {
		if id != 0 && b.ID != id {
			continue
		}
		if n > 0 {
			fmt.Fprintln(w)
		}
		prof.WriteCrash(w, b)
		n++
	}
	if n == 0 {
		if id != 0 {
			return fmt.Errorf("no bundle with id %d in %s (%d bundle(s) present)", id, path, len(bundles))
		}
		return fmt.Errorf("no crash bundles in %s", path)
	}
	return nil
}
