package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/obs/prof"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// buildProfile collects a tiny synthetic run so the renderers have real
// block structure and a service-call site to show.
func buildProfile(t *testing.T) *prof.Profile {
	t.Helper()
	im, err := pal.Build(`
		ldi	r0, 0
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		svc	3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := prof.New().NewCPU()
	c.Enter(tpm.Measure(im.Bytes), im, im.Len()+64, false)
	for i := 0; i < 6; i++ {
		c.RetireInstr(uint32(im.Entry)+uint32(4*(i%4)), 0, 10*time.Nanosecond)
	}
	c.SvcCall(3, uint32(im.Entry)+16, 500*time.Nanosecond)
	c.Leave()
	p := prof.NewProfile()
	c.SnapshotInto(p)
	p.Finish()
	return p
}

func TestRenderAnnotatedByPrefix(t *testing.T) {
	p := buildProfile(t)
	hash := p.Images[0].Hash

	var b strings.Builder
	if err := renderAnnotated(&b, p, hash[:6]); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"addi", "seal", "service calls:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("annotated output missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := renderAnnotated(&b, p, "all"); err != nil {
		t.Fatal(err)
	}
	if b.String() != out {
		t.Fatal(`"all" and the exact prefix disagree for a one-image profile`)
	}

	if err := renderAnnotated(&b, p, "zzzz"); err == nil || !strings.Contains(err.Error(), "no image matches") {
		t.Fatalf("bad prefix error: %v", err)
	}
}

func TestRenderCrashes(t *testing.T) {
	dir := t.TempDir()
	fr := prof.NewFlightRecorder(dir, nil)
	fr.Record(&prof.CrashBundle{Reason: "fault", Tenant: "alice", Error: "divide by zero"})
	fr.Record(&prof.CrashBundle{Reason: "skill", Tenant: "bob"})
	if err := fr.Err(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "crashes.jsonl")

	var b strings.Builder
	if err := renderCrashes(&b, path, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"crash #1", "divide by zero", "crash #2", `tenant="bob"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("crash rendering missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := renderCrashes(&b, path, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "crash #1") || !strings.Contains(b.String(), "crash #2") {
		t.Fatalf("-crash-id 2 rendered the wrong bundle:\n%s", b.String())
	}

	if err := renderCrashes(&b, path, 99); err == nil || !strings.Contains(err.Error(), "no bundle with id 99") {
		t.Fatalf("missing-id error: %v", err)
	}
	if err := renderCrashes(&b, filepath.Join(dir, "absent.jsonl"), 0); err == nil {
		t.Fatal("missing file did not error")
	}
}
