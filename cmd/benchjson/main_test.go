package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: minimaltcb/internal/obs
cpu: Intel(R) Xeon(R)
BenchmarkStartSpanDisabled-8   	85632478	        14.02 ns/op	       0 B/op	       0 allocs/op
BenchmarkScopeEnabled-8        	 4821033	       249.1 ns/op	     144 B/op	       2 allocs/op
PASS
ok  	minimaltcb/internal/obs	2.713s
pkg: minimaltcb/internal/palsvc
BenchmarkJobTracerOff-8   	     512	   2304155 ns/op
BenchmarkThroughput-8     	    1024	   1000000 ns/op	  12.50 MB/s
some stray log line
BenchmarkBroken this line has no numbers
PASS
ok  	minimaltcb/internal/palsvc	4.201s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(rep.Results), rep.Results)
	}

	r := rep.Results[0]
	if r.Pkg != "minimaltcb/internal/obs" || r.Name != "BenchmarkStartSpanDisabled" ||
		r.Procs != 8 || r.Runs != 85632478 || r.NsPerOp != 14.02 {
		t.Fatalf("first result %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("benchmem columns lost: %+v", r)
	}

	r = rep.Results[2]
	if r.Pkg != "minimaltcb/internal/palsvc" || r.Name != "BenchmarkJobTracerOff" {
		t.Fatalf("pkg context not tracked: %+v", r)
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Fatalf("absent benchmem columns must stay nil: %+v", r)
	}

	r = rep.Results[3]
	if r.MBPerSec != 12.50 {
		t.Fatalf("MB/s not parsed: %+v", r)
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok example 0.01s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("results from non-benchmark input: %+v", rep.Results)
	}
	if rep.Results == nil {
		t.Fatal("Results must be non-nil so the JSON is [] not null")
	}
}

func TestParseLineShapes(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
	}{
		{"BenchmarkX-16 100 5 ns/op", true, "BenchmarkX"},
		{"BenchmarkNoProcs 100 5 ns/op", true, "BenchmarkNoProcs"},
		{"BenchmarkShort 100", false, ""},
		{"BenchmarkNoUnit 100 5 furlongs/op 3 ns", false, ""},
		{"BenchmarkBadRuns abc 5 ns/op", false, ""},
	}
	for _, tc := range cases {
		res, ok := parseLine(tc.line)
		if ok != tc.ok {
			t.Fatalf("parseLine(%q) ok=%v, want %v", tc.line, ok, tc.ok)
		}
		if ok && res.Name != tc.name {
			t.Fatalf("parseLine(%q) name=%q, want %q", tc.line, res.Name, tc.name)
		}
	}
	if res, _ := parseLine("BenchmarkX-16 100 5 ns/op"); res.Procs != 16 {
		t.Fatalf("procs suffix not stripped: %+v", res)
	}
}
