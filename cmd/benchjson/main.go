// Command benchjson converts `go test -bench` output into a
// machine-readable JSON document, so `make bench` can commit a stable
// artifact (BENCH_PR2.json) that later sessions diff against.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -compare OLD.json NEW.json   # exit 1 on regression
//
// The parser accepts the standard benchmark result line,
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   2 allocs/op
//
// keeps the pkg: context lines that precede each block, and ignores
// everything else (PASS/ok lines, logs).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg         string  `json:"pkg,omitempty"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	compare := flag.Bool("compare", false, "compare two bench JSON files: -compare old.json new.json")
	maxNs := flag.Float64("max-ns-regress", 50, "compare: fail when ns/op regresses past this percent")
	maxAlloc := flag.Float64("max-alloc-regress", 25, "compare: fail when B/op or allocs/op regresses past this percent")
	nsFloor := flag.Float64("ns-floor", 1000, "compare: skip the ns/op gate for benchmarks whose baseline is below this many ns/op (too noisy); B/op and allocs/op are still gated")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fail(fmt.Errorf("-compare needs exactly two files, got %d", flag.NArg()))
		}
		bad, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *maxNs, *maxAlloc, *nsFloor)
		if err != nil {
			fail(err)
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s)\n", bad)
			os.Exit(1)
		}
		return
	}

	rep, err := Parse(os.Stdin)
	if err != nil {
		fail(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark result(s)\n", len(rep.Results))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// Parse scans go test output for benchmark result lines.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		res.Pkg = pkg
		rep.Results = append(rep.Results, res)
	}
	return rep, sc.Err()
}

// parseLine parses one "BenchmarkX-N  runs  v ns/op [v B/op] [v allocs/op]
// [v MB/s]" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	var res Result
	res.Name = fields[0]
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Runs = runs

	// The rest is value/unit pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Result{}, false
			}
			res.NsPerOp = f
			seenNs = true
		case "B/op":
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				res.BytesPerOp = &n
			}
		case "allocs/op":
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				res.AllocsPerOp = &n
			}
		case "MB/s":
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				res.MBPerSec = f
			}
		}
	}
	return res, seenNs
}
