package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsMatchesByName(t *testing.T) {
	old := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: i64(1000), AllocsPerOp: i64(10)},
		{Name: "BenchmarkGone", NsPerOp: 5},
	}}
	new := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 110, BytesPerOp: i64(500), AllocsPerOp: i64(10)},
		{Name: "BenchmarkFresh", NsPerOp: 7},
	}}
	deltas, onlyOld, onlyNew := CompareReports(old, new)
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkA" {
		t.Fatalf("deltas = %+v, want just BenchmarkA", deltas)
	}
	d := deltas[0]
	if d.NsRegressPct != 10 {
		t.Errorf("ns regression = %v%%, want 10%%", d.NsRegressPct)
	}
	if d.BytesRegressPct != -50 {
		t.Errorf("bytes regression = %v%%, want -50%% (improvement)", d.BytesRegressPct)
	}
	if d.AllocsRegressPct != 0 {
		t.Errorf("allocs regression = %v%%, want 0", d.AllocsRegressPct)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkFresh" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

func TestRegressPctZeroBaseline(t *testing.T) {
	if got := regressPct(0, 0); got != 0 {
		t.Errorf("0->0 = %v, want 0", got)
	}
	if got := regressPct(0, 5); got != 100 {
		t.Errorf("0->5 = %v, want 100", got)
	}
}

func TestRunComparePassesWithinThresholds(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: i64(1000), AllocsPerOp: i64(100)},
	}})
	newP := writeReport(t, dir, "new.json", Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 120, BytesPerOp: i64(1100), AllocsPerOp: i64(110)},
	}})
	var out strings.Builder
	bad, err := runCompare(&out, oldP, newP, 50, 25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("bad = %d, want 0; output:\n%s", bad, out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("output missing OK:\n%s", out.String())
	}
}

func TestRunCompareFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100000}, // well above the ns floor
	}})
	newP := writeReport(t, dir, "new.json", Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 200000},
	}})
	var out strings.Builder
	bad, err := runCompare(&out, oldP, newP, 50, 25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Fatalf("100%% ns/op regression passed a 50%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(ns)") {
		t.Errorf("output missing REGRESSION(ns):\n%s", out.String())
	}
}

func TestRunCompareFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: i64(1000), AllocsPerOp: i64(100)},
	}})
	newP := writeReport(t, dir, "new.json", Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: i64(1000), AllocsPerOp: i64(200)},
	}})
	var out strings.Builder
	bad, err := runCompare(&out, oldP, newP, 50, 25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Fatalf("2x allocs/op regression passed a 25%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(allocs)") {
		t.Errorf("output missing REGRESSION(allocs):\n%s", out.String())
	}
}

func TestRunCompareFailsOnRemovedBenchmark(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
	}})
	newP := writeReport(t, dir, "new.json", Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
	}})
	var out strings.Builder
	bad, err := runCompare(&out, oldP, newP, 50, 25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Fatalf("removed benchmark passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("output missing MISSING marker:\n%s", out.String())
	}
}

func TestRunCompareNsFloorExemptsNoisyMicrobenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", Report{Results: []Result{
		{Name: "BenchmarkTiny", NsPerOp: 40}, // nanosecond-scale: jitter-dominated
	}})
	newP := writeReport(t, dir, "new.json", Report{Results: []Result{
		{Name: "BenchmarkTiny", NsPerOp: 90},
	}})
	var out strings.Builder
	bad, err := runCompare(&out, oldP, newP, 50, 25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("sub-floor ns jitter flagged as regression:\n%s", out.String())
	}
}
