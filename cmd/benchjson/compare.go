package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Compare mode: `benchjson -compare old.json new.json` diffs two committed
// bench artifacts and fails (exit 1) when the new numbers regress past the
// thresholds. This is the gate `make check` runs over BENCH_PR*.json so a
// PR cannot silently give back the fast path's wins.
//
// Thresholds are percentages of the old value. ns/op gets a generous
// default — wall time on a shared builder is noisy — while allocs/op and
// B/op are near-deterministic for a fixed workload, so they get a tight
// one. Benchmarks whose baseline runs under the ns floor are exempt from
// the ns/op gate entirely: at nanosecond scale and a fixed iteration
// count, wall-time percentages are dominated by scheduler jitter, while
// their B/op and allocs/op stay exact and remain gated.

// Delta is one benchmark's old→new movement.
type Delta struct {
	Name             string
	OldNs, NewNs     float64
	OldB, NewB       *int64
	OldAlloc         *int64
	NewAlloc         *int64
	NsRegressPct     float64 // positive = slower
	BytesRegressPct  float64
	AllocsRegressPct float64
}

// CompareReports matches results by name and computes regressions. Bench
// names present in only one report are returned in onlyOld/onlyNew; a
// removed benchmark is suspicious (it could hide a regression) but is the
// caller's call to flag.
func CompareReports(old, new *Report) (deltas []Delta, onlyOld, onlyNew []string) {
	oldByName := map[string]Result{}
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	newNames := map[string]bool{}
	for _, n := range new.Results {
		newNames[n.Name] = true
		o, ok := oldByName[n.Name]
		if !ok {
			onlyNew = append(onlyNew, n.Name)
			continue
		}
		d := Delta{
			Name:  n.Name,
			OldNs: o.NsPerOp, NewNs: n.NsPerOp,
			OldB: o.BytesPerOp, NewB: n.BytesPerOp,
			OldAlloc: o.AllocsPerOp, NewAlloc: n.AllocsPerOp,
		}
		d.NsRegressPct = regressPct(o.NsPerOp, n.NsPerOp)
		if o.BytesPerOp != nil && n.BytesPerOp != nil {
			d.BytesRegressPct = regressPct(float64(*o.BytesPerOp), float64(*n.BytesPerOp))
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			d.AllocsRegressPct = regressPct(float64(*o.AllocsPerOp), float64(*n.AllocsPerOp))
		}
		deltas = append(deltas, d)
	}
	for _, o := range old.Results {
		if !newNames[o.Name] {
			onlyOld = append(onlyOld, o.Name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// regressPct returns how much worse new is than old, in percent of old.
// Improvements are negative. A zero old value regresses only if new > 0.
func regressPct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100 // 0 → nonzero: treat as a full regression
	}
	return (new - old) / old * 100
}

// runCompare loads both reports, prints the delta table, and returns the
// number of threshold violations.
func runCompare(w io.Writer, oldPath, newPath string, maxNsPct, maxAllocPct, nsFloor float64) (int, error) {
	old, err := loadReport(oldPath)
	if err != nil {
		return 0, err
	}
	new, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}
	deltas, onlyOld, onlyNew := CompareReports(old, new)

	bad := 0
	fmt.Fprintf(w, "benchjson compare: %s -> %s (fail past +%.0f%% ns/op, +%.0f%% B/op or allocs/op)\n",
		oldPath, newPath, maxNsPct, maxAllocPct)
	fmt.Fprintf(w, "%-40s %14s %14s %14s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, d := range deltas {
		verdict := ""
		if d.NsRegressPct > maxNsPct && d.OldNs >= nsFloor {
			verdict = " REGRESSION(ns)"
			bad++
		}
		if d.BytesRegressPct > maxAllocPct {
			verdict += " REGRESSION(B)"
			bad++
		}
		if d.AllocsRegressPct > maxAllocPct {
			verdict += " REGRESSION(allocs)"
			bad++
		}
		fmt.Fprintf(w, "%-40s %+13.1f%% %+13.1f%% %+13.1f%%%s\n",
			d.Name, d.NsRegressPct, d.BytesRegressPct, d.AllocsRegressPct, verdict)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(w, "%-40s MISSING from %s (removed benchmarks can hide regressions)\n", name, newPath)
		bad++
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "%-40s new benchmark (no baseline)\n", name)
	}
	if bad == 0 {
		fmt.Fprintln(w, "benchjson compare: OK")
	}
	return bad, nil
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
