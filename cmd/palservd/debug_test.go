package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/obs/prof"
	"minimaltcb/internal/palsvc"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugStackEndToEnd drives real jobs through a traced, metered
// service and scrapes the debug endpoints the way an operator would.
func TestDebugStackEndToEnd(t *testing.T) {
	auditDir := t.TempDir()
	d := newDebugStack(debugOpts{trace: true, profile: true, auditDir: auditDir})
	if err := d.openAudit(auditDir, "palservd"); err != nil {
		t.Fatal(err)
	}
	defer d.closeAudit()
	cfg := testCfg(4)
	d.apply(&cfg)
	s, err := palsvc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := d.serve("127.0.0.1:0", s); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d.srv.Addr()

	res, err := s.Run(palsvc.Job{Name: "dbg", Source: defaultPAL, Input: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	// /metrics covers the job counters and stage histograms.
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"palsvc_jobs_submitted_total 1",
		"palsvc_jobs_completed_total 1",
		`palsvc_stage_duration_seconds_bucket{clock="virtual",stage="execute",le="+Inf"} 1`,
		"obs_trace_dropped_total 0",
		"obs_trace_ring_size",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /debug/profile serves the live virtual-cycle profile.
	code, body = httpGet(t, base+"/debug/profile")
	if code != http.StatusOK {
		t.Fatalf("/debug/profile status %d", code)
	}
	p, err := prof.ReadProfile(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Images) != 1 || len(p.Tenants) != 1 || p.Tenants[0].Name != "dbg" {
		t.Fatalf("profile images=%d tenants=%+v", len(p.Images), p.Tenants)
	}
	code, body = httpGet(t, base+"/debug/profile?format=folded")
	if code != http.StatusOK || !strings.Contains(body, ";blk_0x") {
		t.Fatalf("folded profile: %d %q", code, body)
	}

	// /debug/trace round-trips through the JSONL decoder and contains the
	// sePCR life cycle in order.
	code, body = httpGet(t, base+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	recs, err := obs.ReadJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var lifecycle []string
	for _, r := range recs {
		if r.Cat == obs.CatSePCR && r.Kind == obs.KindSpan {
			lifecycle = append(lifecycle, r.Name)
		}
	}
	if len(lifecycle) != 2 || lifecycle[0] != "sePCR.Exclusive" || lifecycle[1] != "sePCR.Quote" {
		t.Fatalf("lifecycle %v", lifecycle)
	}

	// A faulting job lands in the flight recorder and on /debug/crashes.
	res, err = s.Run(palsvc.Job{Name: "dbg-crash", Source: "\tldi r0, 1\n\tldi r1, 0\n\tdivu r0, r1\n"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("faulting job reported success")
	}
	code, body = httpGet(t, base+"/debug/crashes")
	if code != http.StatusOK {
		t.Fatalf("/debug/crashes status %d", code)
	}
	var bundles []*prof.CrashBundle
	if err := json.Unmarshal([]byte(body), &bundles); err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 || bundles[0].Tenant != "dbg-crash" || bundles[0].Reason != "fault" {
		t.Fatalf("/debug/crashes bundles %+v", bundles)
	}

	// /debug/audit serves the tamper-evident log: the completed job's
	// launch and the crashed job's fault are both on the record, and the
	// audit counters are on /metrics.
	code, body = httpGet(t, base+"/debug/audit")
	if code != http.StatusOK {
		t.Fatalf("/debug/audit status %d", code)
	}
	for _, want := range []string{`"slaunch"`, `"pal_fault"`, `"dbg-crash"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/audit missing %s:\n%s", want, body)
		}
	}
	code, body = httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"audit_events_total", "audit_events_dropped_total 0", "audit_log_size"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// /healthz flips to 503 with the shutdown reason.
	code, _ = httpGet(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	d.health.Fail("palservd shutting down")
	code, body = httpGet(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "shutting down") {
		t.Fatalf("/healthz after shutdown: %d %q", code, body)
	}
	d.shutdown("done")
}

func TestDebugStackDisabledIsInert(t *testing.T) {
	d := newDebugStack(debugOpts{})
	if d.tracer != nil || d.reg != nil || d.health != nil {
		t.Fatal("disabled stack allocated components")
	}
	cfg := testCfg(2)
	d.apply(&cfg)
	if cfg.Tracer != nil || cfg.Registry != nil {
		t.Fatal("disabled stack leaked into config")
	}
	if err := d.serve("", nil); err != nil {
		t.Fatal(err)
	}
	d.shutdown("noop")
	if err := d.writeTrace("", "jsonl"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenWritesChromeTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	err := runLoadgen(loadgenOpts{
		clients:     2,
		duration:    300 * time.Millisecond,
		svc:         testCfg(4),
		connTimeout: 10 * time.Second,
		debug:       debugOpts{traceOut: out, traceFormat: "chrome"},
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			ID    string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not a Chrome trace: %v", err)
	}
	// The acceptance criterion: sePCR Exclusive→Quote→Free visible with
	// both clocks. Async begins are sorted by timestamp, so for each
	// register the Exclusive phase must open before its Quote phase.
	firstExclusive := map[string]float64{}
	quoteOK := false
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "b" {
			continue
		}
		switch ev.Name {
		case "sePCR.Exclusive":
			if _, ok := firstExclusive[ev.ID]; !ok {
				firstExclusive[ev.ID] = ev.TS
			}
		case "sePCR.Quote":
			start, ok := firstExclusive[ev.ID]
			if !ok {
				t.Fatalf("Quote span for %s with no prior Exclusive", ev.ID)
			}
			if ev.TS < start {
				t.Fatalf("Quote at %v before Exclusive at %v", ev.TS, start)
			}
			quoteOK = true
		}
	}
	if len(firstExclusive) == 0 || !quoteOK {
		t.Fatalf("no sePCR lifecycle in loadgen trace (%d events)", len(doc.TraceEvents))
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "sePCR.Free" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no sePCR.Free event in loadgen trace")
	}
}

func TestLoadgenWritesJSONLTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.jsonl")
	err := runLoadgen(loadgenOpts{
		clients:     1,
		duration:    200 * time.Millisecond,
		noAttest:    true,
		svc:         testCfg(2),
		connTimeout: 10 * time.Second,
		debug:       debugOpts{traceOut: out, traceFormat: "jsonl"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace dump")
	}
}

// TestLoadgenWritesProfile: -profile-out against the self-hosted loadgen
// captures per-tenant virtual-cycle attribution.
func TestLoadgenWritesProfile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "profile.json")
	err := runLoadgen(loadgenOpts{
		clients:     2,
		duration:    200 * time.Millisecond,
		noAttest:    true,
		svc:         testCfg(2),
		connTimeout: 10 * time.Second,
		debug:       debugOpts{profileOut: out},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := prof.ReadProfile(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Images) == 0 || len(p.Tenants) == 0 {
		t.Fatalf("empty loadgen profile: images=%d tenants=%d", len(p.Images), len(p.Tenants))
	}
	for _, ts := range p.Tenants {
		if ts.Jobs == 0 || ts.CyclesNs == 0 {
			t.Fatalf("tenant %q has no attribution: %+v", ts.Name, ts)
		}
	}
	for _, ip := range p.Images {
		if ip.Instructions == 0 || len(ip.Blocks) == 0 {
			t.Fatalf("image %s has no attribution", ip.ShortHash())
		}
	}
}
