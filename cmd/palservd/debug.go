package main

import (
	"fmt"
	"os"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/obs/prof"
	"minimaltcb/internal/palsvc"
)

// debugOpts collects the observability flags shared by serve and loadgen
// mode.
type debugOpts struct {
	// addr is the debug HTTP listen address ("" disables the server).
	addr string
	// trace records spans even when no -debug / -trace-out sink is set,
	// so a later /debug/trace scrape or test can read them.
	trace bool
	// traceBuf is the recorder ring capacity (0 = obs.DefaultCapacity).
	traceBuf int
	// traceOut, when set, receives the recorder dump on exit.
	traceOut string
	// traceFormat selects the dump encoding: "jsonl" or "chrome".
	traceFormat string
	// profile enables the exact virtual-cycle profiler (implied by
	// -profile-out).
	profile bool
	// profileOut, when set, receives the profile JSON on exit.
	profileOut string
	// crashDir, when set, persists fault flight-recorder bundles to
	// <dir>/crashes.jsonl (the recorder itself runs whenever any
	// observability is on, serving /debug/crashes from memory).
	crashDir string
	// sloObjective/sloTarget parameterize the per-tenant SLO tracker,
	// which rides along with any observability (zero values take the
	// tracker defaults: 0.99 and 250ms).
	sloObjective float64
	sloTarget    time.Duration
	// auditDir, when set, persists the tamper-evident attestation audit
	// log (Merkle tree + AIK-signed heads) under this directory and serves
	// it at /debug/audit. Verify offline with tcbaudit -verify.
	auditDir string
}

// enabled reports whether any observability feature was requested.
func (o debugOpts) enabled() bool {
	return o.addr != "" || o.trace || o.traceOut != "" ||
		o.profiling() || o.crashDir != "" || o.auditDir != ""
}

// profiling reports whether the virtual-cycle profiler was requested.
func (o debugOpts) profiling() bool { return o.profile || o.profileOut != "" }

// debugStack is the assembled observability plumbing: the tracer and
// registry handed to palsvc, the health state behind /healthz, the
// virtual-cycle profiler and fault flight recorder, and the debug HTTP
// server once started. The zero stack (all nil) is valid and makes every
// method a no-op — palsvc then compiles its instrumentation down to nil
// checks.
type debugStack struct {
	tracer   *obs.Tracer
	reg      *obs.Registry
	health   *obs.Health
	slo      *obs.SLOTracker
	profiler *prof.Profiler
	flight   *prof.FlightRecorder
	audit    *audit.Log
	srv      *obs.DebugServer
}

// newDebugStack builds the tracer/registry/health trio per opts, plus the
// profiler and flight recorder when asked for.
func newDebugStack(o debugOpts) *debugStack {
	d := &debugStack{}
	if !o.enabled() {
		return d
	}
	d.tracer = obs.NewTracer(o.traceBuf)
	// A node epoch makes this process's trace and span IDs globally
	// unique, so a router-driven stitch (obs.Stitch) can merge this ring
	// with other daemons' without ID collisions.
	d.tracer.SetNode(obs.NewNodeID())
	d.reg = obs.NewRegistry()
	d.health = &obs.Health{}
	d.slo = obs.NewSLOTracker(obs.SLOConfig{Objective: o.sloObjective, LatencyTarget: o.sloTarget})
	obs.RegisterTracerMetrics(d.reg, d.tracer)
	if o.profiling() {
		d.profiler = prof.New()
	}
	// The flight recorder is cheap (it only acts on faults), so it rides
	// along with any observability; -crash-dir additionally persists it.
	d.flight = prof.NewFlightRecorder(o.crashDir, d.tracer)
	return d
}

// openAudit opens the tamper-evident audit log under dir (no-op when dir
// is empty). Call closeAudit when the service is fully drained: Close
// emits the final signed tree head that makes the tail of the log
// provable offline.
func (d *debugStack) openAudit(dir, node string) error {
	if dir == "" {
		return nil
	}
	l, err := audit.Open(audit.Config{Dir: dir, Node: node})
	if err != nil {
		return err
	}
	l.BindRegistry(d.reg)
	d.audit = l
	return nil
}

// closeAudit seals the audit log with a final tree head. Register it
// before the service's own Close so LIFO ordering runs it after the last
// event has been appended.
func (d *debugStack) closeAudit() {
	if d.audit != nil {
		d.audit.Close()
	}
}

// apply hands the tracer, registry, profiler, flight recorder, and audit
// log to a service config.
func (d *debugStack) apply(cfg *palsvc.Config) {
	cfg.Tracer = d.tracer
	cfg.Registry = d.reg
	cfg.SLO = d.slo
	cfg.Profiler = d.profiler
	cfg.Flight = d.flight
	cfg.Audit = d.audit
}

// serve starts the debug HTTP server when addr is set. svc, when non-nil,
// backs the /debug/profile endpoint.
func (d *debugStack) serve(addr string, svc *palsvc.Service) error {
	if addr == "" {
		return nil
	}
	var extras []obs.Endpoint
	if d.profiler != nil && svc != nil {
		extras = append(extras, obs.Endpoint{
			Path: "/debug/profile", Desc: "virtual-cycle profile (JSON; ?format=folded|annotated)",
			Handler: prof.Handler(func() *prof.Profile { return svc.Profile() }),
		})
	}
	if d.flight != nil {
		extras = append(extras, obs.Endpoint{
			Path: "/debug/crashes", Desc: "fault flight-recorder bundles (JSON; ?id=N&format=text)",
			Handler: d.flight.Handler(),
		})
	}
	if d.slo != nil {
		extras = append(extras, obs.Endpoint{
			Path: "/debug/slo", Desc: "per-tenant SLO burn rates and latency quantiles (JSON)",
			Handler: d.slo.Handler(),
		})
	}
	if d.audit != nil {
		extras = append(extras, obs.Endpoint{
			Path: "/debug/audit", Desc: "tamper-evident attestation audit log (JSON; ?tenant=&trace=&image=&since=&n=)",
			Handler: d.audit.Handler(),
		})
	}
	srv, err := obs.ListenAndServeDebug(addr, obs.NewDebugMux(d.reg, d.tracer, d.health, extras...))
	if err != nil {
		return err
	}
	d.srv = srv
	fmt.Printf("palservd: debug server on http://%s (/metrics /healthz /debug/trace /debug/pprof", srv.Addr())
	for _, e := range extras {
		fmt.Printf(" %s", e.Path)
	}
	fmt.Println(")")
	return nil
}

// shutdown flips /healthz to 503 with reason, then closes the listener.
// The ordering means a scraper that races the close sees "unavailable"
// rather than a healthy endpoint vanishing mid-poll.
func (d *debugStack) shutdown(reason string) {
	d.health.Fail(reason)
	if d.srv != nil {
		_ = d.srv.Close()
	}
}

// writeTrace dumps the recorder to path in the requested format.
func (d *debugStack) writeTrace(path, format string) error {
	if path == "" || d.tracer == nil {
		return nil
	}
	recs, dropped := d.tracer.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		err = obs.WriteChromeTrace(f, recs)
	default:
		err = obs.WriteJSONL(f, recs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("palservd: wrote %d trace record(s) to %s (%s format, %d overwritten by the ring)\n",
		len(recs), path, format, dropped)
	return nil
}

// writeProfile dumps the service's profile JSON to path (the tcbprof
// input) when -profile-out asked for one.
func (d *debugStack) writeProfile(path string, svc *palsvc.Service) error {
	if path == "" || d.profiler == nil || svc == nil {
		return nil
	}
	p := svc.Profile()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = p.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("palservd: wrote profile (%d image(s), %d tenant(s)) to %s\n",
		len(p.Images), len(p.Tenants), path)
	return nil
}
