package main

import (
	"fmt"
	"os"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/palsvc"
)

// debugOpts collects the observability flags shared by serve and loadgen
// mode.
type debugOpts struct {
	// addr is the debug HTTP listen address ("" disables the server).
	addr string
	// trace records spans even when no -debug / -trace-out sink is set,
	// so a later /debug/trace scrape or test can read them.
	trace bool
	// traceBuf is the recorder ring capacity (0 = obs.DefaultCapacity).
	traceBuf int
	// traceOut, when set, receives the recorder dump on exit.
	traceOut string
	// traceFormat selects the dump encoding: "jsonl" or "chrome".
	traceFormat string
}

// enabled reports whether any observability feature was requested.
func (o debugOpts) enabled() bool { return o.addr != "" || o.trace || o.traceOut != "" }

// debugStack is the assembled observability plumbing: the tracer and
// registry handed to palsvc, the health state behind /healthz, and the
// debug HTTP server once started. The zero stack (all nil) is valid and
// makes every method a no-op — palsvc then compiles its instrumentation
// down to nil checks.
type debugStack struct {
	tracer *obs.Tracer
	reg    *obs.Registry
	health *obs.Health
	srv    *obs.DebugServer
}

// newDebugStack builds the tracer/registry/health trio per opts.
func newDebugStack(o debugOpts) *debugStack {
	d := &debugStack{}
	if !o.enabled() {
		return d
	}
	d.tracer = obs.NewTracer(o.traceBuf)
	d.reg = obs.NewRegistry()
	d.health = &obs.Health{}
	return d
}

// apply hands the tracer and registry to a service config.
func (d *debugStack) apply(cfg *palsvc.Config) {
	cfg.Tracer = d.tracer
	cfg.Registry = d.reg
}

// serve starts the debug HTTP server when addr is set.
func (d *debugStack) serve(addr string) error {
	if addr == "" {
		return nil
	}
	srv, err := obs.ListenAndServeDebug(addr, obs.NewDebugMux(d.reg, d.tracer, d.health))
	if err != nil {
		return err
	}
	d.srv = srv
	fmt.Printf("palservd: debug server on http://%s (/metrics /healthz /debug/trace /debug/pprof)\n", srv.Addr())
	return nil
}

// shutdown flips /healthz to 503 with reason, then closes the listener.
// The ordering means a scraper that races the close sees "unavailable"
// rather than a healthy endpoint vanishing mid-poll.
func (d *debugStack) shutdown(reason string) {
	d.health.Fail(reason)
	if d.srv != nil {
		_ = d.srv.Close()
	}
}

// writeTrace dumps the recorder to path in the requested format.
func (d *debugStack) writeTrace(path, format string) error {
	if path == "" || d.tracer == nil {
		return nil
	}
	recs, dropped := d.tracer.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		err = obs.WriteChromeTrace(f, recs)
	default:
		err = obs.WriteJSONL(f, recs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("palservd: wrote %d trace record(s) to %s (%s format, %d overwritten by the ring)\n",
		len(recs), path, format, dropped)
	return nil
}
