package main

import (
	"testing"
	"time"

	"minimaltcb/internal/palsvc"
)

func testCfg(sePCRs int) palsvc.Config {
	return serviceConfig(1, sePCRs, 0, 64, 0, 1024, 42, 0, false)
}

func TestServerEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() { errs <- runServer("127.0.0.1:0", 10*time.Second, testCfg(4), debugOpts{}, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errs:
		t.Fatal(err)
	}

	cl, err := palsvc.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Run(&palsvc.WireRequest{Name: "echo", Source: defaultPAL, Input: []byte("over the wire")})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("run failed: %s", resp.Err)
	}
	if string(resp.Output) != "over the wire" {
		t.Fatalf("output %q", resp.Output)
	}
	if resp.VerifiedAs != "echo" {
		t.Fatalf("verified as %q", resp.VerifiedAs)
	}
}

func TestLoadgenSelfHosted(t *testing.T) {
	err := runLoadgen(loadgenOpts{
		clients:     2,
		duration:    300 * time.Millisecond,
		svc:         testCfg(4),
		connTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenAgainstRemote(t *testing.T) {
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() { errs <- runServer("127.0.0.1:0", 10*time.Second, testCfg(4), debugOpts{}, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errs:
		t.Fatal(err)
	}
	err := runLoadgen(loadgenOpts{
		addr:     addr,
		clients:  2,
		rate:     50,
		duration: 300 * time.Millisecond,
		noAttest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenBadPALFile(t *testing.T) {
	err := runLoadgen(loadgenOpts{palFile: "/nonexistent.pal"})
	if err == nil {
		t.Fatal("missing PAL file accepted")
	}
}
