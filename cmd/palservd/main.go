// Command palservd fronts internal/palsvc with a TCP server: a
// multi-tenant PAL-execution service whose admission control is bounded by
// the simulated platform's sePCR bank (§5.6 of the paper).
//
// Usage:
//
//	palservd [-addr 127.0.0.1:7080] [-machines N] [-sepcrs K] ...
//	    Serve the length-prefixed JSON job protocol (see
//	    internal/palsvc/wire.go) until killed.
//
//	palservd -loadgen [-clients N] [-rate R] [-duration D] [-addr A]
//	    Load-generator mode: hammer a palservd at -addr, or — when -addr
//	    is left at its default — self-host a server in-process first.
//	    Prints throughput and p50/p95/p99 end-to-end latency, then the
//	    server-side metrics snapshot.
//
//	palservd ... -chaos-profile soak[,k=v...] [-chaos-seed N]
//	    Either mode under deterministic fault injection (see
//	    docs/RESILIENCE.md). The seed is printed at startup so any run
//	    replays exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"minimaltcb/internal/chaos"
	"minimaltcb/internal/palsvc"
	"minimaltcb/internal/platform"
)

// defaultPAL is what loadgen submits when no -pal file is given: it echoes
// its input through the attested channel.
const defaultPAL = `
	ldi r0, buf
	ldi r1, 32
	svc 7
	mov r1, r0
	ldi r0, buf
	svc 6
	ldi r0, 0
	svc 0
buf:	.ascii "--------------------------------"
`

func main() {
	var (
		addr        = flag.String("addr", "", "listen address (serve) or target address (loadgen); default 127.0.0.1:7080 / self-hosted")
		machines    = flag.Int("machines", 1, "platform replicas")
		sePCRs      = flag.Int("sepcrs", 8, "sePCR bank size per replica")
		workers     = flag.Int("workers", 0, "worker-pool size (0 = 2x total bank)")
		queueDepth  = flag.Int("queue", 64, "submission-queue depth")
		quantum     = flag.Duration("quantum", 0, "SLAUNCH preemption quantum, virtual time (0 = run to completion)")
		keyBits     = flag.Int("keybits", 1024, "RSA modulus size for the simulated TPM/CA")
		seed        = flag.Uint64("seed", 42, "platform randomness seed")
		deadline    = flag.Duration("deadline", 0, "default per-job deadline (0 = none)")
		connTimeout = flag.Duration("conn-timeout", 30*time.Second, "per-request connection deadline (0 = none)")
		reject      = flag.Bool("reject", false, "reject (not queue) jobs when the sePCR bank is exhausted")
		blockComp   = flag.Bool("block-compile", true, "compile hot basic blocks into threaded code (disable to force pure interpretation)")
		batchSize   = flag.Int("quote-batch", 0, "batch up to N completed jobs per attestation quote (one AIK signature per batch, verified over a per-machine session); 0 or 1 quotes per job")
		batchWait   = flag.Duration("quote-batch-wait", 200*time.Microsecond, "max time the quote batcher lingers for stragglers after the first job arrives")

		chaosProfile = flag.String("chaos-profile", "", "fault-injection profile: off|light|heavy|tpm|storm|soak, optionally with k=v overrides (e.g. \"soak,tpm_fail=0.1\"); \"\" disables chaos")
		chaosSeed    = flag.Uint64("chaos-seed", 0, "fault-injection seed (0 = derive from time; the chosen seed is printed so any run can be replayed)")

		loadgen    = flag.Bool("loadgen", false, "run the load generator instead of serving")
		clients    = flag.Int("clients", 4, "loadgen: concurrent client connections (open-loop: connection-pool size)")
		rate       = flag.Float64("rate", 0, "loadgen: aggregate requests/second (0 = unpaced)")
		openLoop   = flag.Bool("open-loop", false, "loadgen: fixed-arrival-rate mode (requires -rate); latency counts from the scheduled arrival")
		tenants    = flag.Int("tenants", 1, "loadgen: distinct tenants to split the load across (each gets its own image, so cluster routing spreads them)")
		tenantRate = flag.Float64("tenant-rate", 0, "loadgen: per-tenant arrival-rate cap in open-loop mode (0 = rate/tenants)")
		duration   = flag.Duration("duration", 2*time.Second, "loadgen: run length")
		palFile    = flag.String("pal", "", "loadgen: PAL assembler source file (default: built-in echo PAL)")
		noAttest   = flag.Bool("no-attest", false, "loadgen: skip quote generation and verification")

		debugAddr   = flag.String("debug", "", "debug HTTP listen address for /metrics, /healthz, /debug/trace, /debug/pprof (\"\" disables)")
		trace       = flag.Bool("trace", false, "record execution traces (implied by -debug or -trace-out)")
		traceBuf    = flag.Int("trace-buf", 0, "trace recorder ring capacity (0 = default 8192)")
		traceOut    = flag.String("trace-out", "", "write the trace dump to this file on exit (self-hosted loadgen only)")
		traceFormat = flag.String("trace-format", "chrome", "trace dump format: chrome (Perfetto-loadable) or jsonl")
		profile     = flag.Bool("profile", false, "record the exact virtual-cycle profile (served at /debug/profile; implied by -profile-out)")
		profileOut  = flag.String("profile-out", "", "write the profile JSON (tcbprof input) to this file on exit (self-hosted loadgen only)")
		crashDir    = flag.String("crash-dir", "", "persist fault flight-recorder bundles to <dir>/crashes.jsonl")
		auditDir    = flag.String("audit-dir", "", "persist the tamper-evident attestation audit log (Merkle tree + AIK-signed heads) under this directory; query/verify with tcbaudit")

		sloObjective = flag.Float64("slo-objective", 0.99, "SLO good-request objective for per-tenant burn-rate accounting")
		sloTarget    = flag.Duration("slo-target", 250*time.Millisecond, "SLO latency target: slower successes count against the error budget (<0 disables)")
	)
	flag.Parse()

	dbg := debugOpts{
		addr: *debugAddr, trace: *trace, traceBuf: *traceBuf,
		traceOut: *traceOut, traceFormat: *traceFormat,
		profile: *profile, profileOut: *profileOut, crashDir: *crashDir,
		sloObjective: *sloObjective, sloTarget: *sloTarget,
		auditDir: *auditDir,
	}
	svcCfg := serviceConfig(*machines, *sePCRs, *workers, *queueDepth,
		*quantum, *keyBits, *seed, *deadline, *reject)
	svcCfg.DisableBlockCompile = !*blockComp
	if *batchSize > 1 {
		svcCfg.Batch = palsvc.BatchPolicy{MaxSize: *batchSize, MaxWait: *batchWait}
	}
	if err := applyChaos(&svcCfg, *chaosProfile, *chaosSeed); err != nil {
		fmt.Fprintf(os.Stderr, "palservd: %v\n", err)
		os.Exit(2)
	}
	var err error
	if *loadgen {
		err = runLoadgen(loadgenOpts{
			addr: *addr, clients: *clients, rate: *rate, duration: *duration,
			openLoop: *openLoop, tenants: *tenants, tenantRate: *tenantRate,
			palFile: *palFile, noAttest: *noAttest,
			svc:         svcCfg,
			connTimeout: *connTimeout,
			debug:       dbg,
		})
	} else {
		listen := *addr
		if listen == "" {
			listen = "127.0.0.1:7080"
		}
		err = runServer(listen, *connTimeout, svcCfg, dbg, nil)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "palservd: %v\n", err)
		os.Exit(1)
	}
}

func serviceConfig(machines, sePCRs, workers, queueDepth int,
	quantum time.Duration, keyBits int, seed uint64,
	deadline time.Duration, reject bool) palsvc.Config {
	prof := platform.Recommended(platform.HPdc5750(), sePCRs)
	prof.KeyBits = keyBits
	prof.Seed = seed
	cfg := palsvc.Config{
		Profile:         prof,
		Machines:        machines,
		Workers:         workers,
		QueueDepth:      queueDepth,
		Quantum:         quantum,
		DefaultDeadline: deadline,
	}
	if reject {
		cfg.Admission = palsvc.AdmitReject
	}
	return cfg
}

// applyChaos parses -chaos-profile/-chaos-seed into the service config. A
// non-trivial profile also enables the supervisor defaults (retry with
// backoff, replica quarantine) — injecting faults without supervision would
// just measure how fast jobs can fail. The effective seed is always
// printed: replaying any run, including one that derived its seed from the
// clock, only takes passing that number back via -chaos-seed.
func applyChaos(cfg *palsvc.Config, profile string, seed uint64) error {
	if profile == "" {
		return nil
	}
	p, err := chaos.ParseProfile(profile)
	if err != nil {
		return err
	}
	if !p.Enabled() {
		return nil
	}
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	cfg.Chaos = chaos.New(seed, p)
	cfg.Retry = palsvc.DefaultRetryPolicy()
	cfg.Supervisor = palsvc.DefaultSupervisorPolicy()
	fmt.Printf("palservd: chaos profile [%v] seed %d (replay with -chaos-profile %q -chaos-seed %d)\n",
		p, seed, profile, seed)
	return nil
}

// runServer builds the service and serves until the listener dies. If ready
// is non-nil the bound address is sent once listening (tests and loadgen
// self-hosting use it).
func runServer(addr string, connTimeout time.Duration, cfg palsvc.Config, dbg debugOpts, ready chan<- string) error {
	d := newDebugStack(dbg)
	if err := d.openAudit(dbg.auditDir, "palservd"); err != nil {
		return err
	}
	defer d.closeAudit()
	d.apply(&cfg)
	s, err := palsvc.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	if err := d.serve(dbg.addr, s); err != nil {
		return err
	}
	defer d.shutdown("palservd shutting down")
	defer func() { _ = d.writeProfile(dbg.profileOut, s) }()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("palservd: %d machine(s) x %d sePCRs (bank %d), queue depth %d\n",
		cfg.Machines, cfg.Profile.NumSePCRs, s.Bank(), cfg.QueueDepth)
	fmt.Printf("palservd: serving PAL jobs on %s\n", l.Addr())
	if ready != nil {
		ready <- l.Addr().String()
	}
	stopping := shutdownOnSignal(l, "palservd")
	err = s.Serve(l, connTimeout)
	if stopping.Load() {
		return nil
	}
	return err
}

// shutdownOnSignal closes l on SIGINT/SIGTERM so the blocking Serve
// returns and the deferred closers run — in particular the audit log's
// Close, whose final signed head must cover the whole tail. Without this
// the process dies mid-segment and every event since the last periodic
// head is unprovable.
func shutdownOnSignal(l net.Listener, name string) *atomic.Bool {
	var stopping atomic.Bool
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		stopping.Store(true)
		fmt.Printf("%s: %v — shutting down\n", name, sig)
		l.Close()
	}()
	return &stopping
}

type loadgenOpts struct {
	addr        string
	clients     int
	rate        float64
	openLoop    bool
	tenants     int
	tenantRate  float64
	duration    time.Duration
	palFile     string
	noAttest    bool
	svc         palsvc.Config
	connTimeout time.Duration
	debug       debugOpts
}

// runLoadgen drives palsvc.RunLoad, self-hosting a server when no target
// address is given.
func runLoadgen(o loadgenOpts) error {
	src := defaultPAL
	name := "loadgen-echo"
	if o.palFile != "" {
		b, err := os.ReadFile(o.palFile)
		if err != nil {
			return err
		}
		src, name = string(b), o.palFile
	}

	target := o.addr
	var hosted *palsvc.Service
	d := newDebugStack(o.debug)
	if target == "" {
		// Tracing and metrics live server-side: they only capture
		// anything when the server is hosted in this process.
		if err := d.openAudit(o.debug.auditDir, "palservd"); err != nil {
			return err
		}
		defer d.closeAudit()
		d.apply(&o.svc)
		s, err := palsvc.New(o.svc)
		if err != nil {
			return err
		}
		hosted = s
		defer s.Close()
		if err := d.serve(o.debug.addr, s); err != nil {
			return err
		}
		defer d.shutdown("loadgen finished")
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer l.Close()
		go func() { _ = s.Serve(l, o.connTimeout) }()
		target = l.Addr().String()
		fmt.Printf("palservd: self-hosted server on %s (bank %d)\n", target, s.Bank())
	}

	fmt.Printf("palservd: loadgen %d client(s) against %s for %v\n",
		o.clients, target, o.duration)
	rep, err := palsvc.RunLoad(palsvc.LoadConfig{
		Addr:        target,
		Clients:     o.clients,
		Rate:        o.rate,
		OpenLoop:    o.openLoop,
		Tenants:     o.tenants,
		TenantRate:  o.tenantRate,
		DialTimeout: o.connTimeout,
		Duration:    o.duration,
		Name:        name,
		Source:      src,
		Input:       []byte("loadgen"),
		NoAttest:    o.noAttest,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)

	// Server-side view: either from the self-hosted service or over the
	// wire from the remote one.
	var stats *palsvc.Metrics
	if hosted != nil {
		m := hosted.Metrics()
		stats = &m
	} else if cl, err := palsvc.Dial(target, o.connTimeout); err == nil {
		defer cl.Close()
		stats, _ = cl.Stats()
	}
	if stats != nil {
		out, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("server metrics:\n%s\n", out)
	}

	// Capacity runs double as profiling runs: append the per-tenant
	// virtual-cycle totals and hottest basic blocks to the report.
	if hosted != nil && d.profiler != nil {
		if p := hosted.Profile(); p != nil {
			fmt.Println("virtual-cycle profile:")
			p.WriteSummary(os.Stdout, 3)
		}
		if err := d.writeProfile(o.debug.profileOut, hosted); err != nil {
			return err
		}
	}
	return d.writeTrace(o.debug.traceOut, o.debug.traceFormat)
}
