package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/attest"
)

func TestDemoEndToEnd(t *testing.T) {
	if err := demo(attest.DefaultTimeout); err != nil {
		t.Fatal(err)
	}
}

func TestServeWithAnchorsAndVerify(t *testing.T) {
	dir := t.TempDir()
	anchors := filepath.Join(dir, "anchors.gob")
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() { errs <- serve("127.0.0.1:0", "", anchors, attest.DefaultTimeout, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errs:
		t.Fatal(err)
	}
	if _, err := os.Stat(anchors); err != nil {
		t.Fatalf("anchors not written: %v", err)
	}
	if err := verify(addr, anchors, attest.DefaultTimeout); err != nil {
		t.Fatal(err)
	}
}

func TestServeCustomPAL(t *testing.T) {
	dir := t.TempDir()
	palSrc := filepath.Join(dir, "p.pal")
	os.WriteFile(palSrc, []byte("ldi r0, 0\nsvc 0\n"), 0o644)
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() { errs <- serve("127.0.0.1:0", palSrc, "", attest.DefaultTimeout, ready) }()
	select {
	case addr := <-ready:
		// The default-anchor verifier approves only the built-in PAL,
		// so verification must fail for the custom one.
		if err := verify(addr, "", attest.DefaultTimeout); err == nil {
			t.Fatal("custom PAL verified against default anchors")
		}
	case err := <-errs:
		t.Fatal(err)
	}
}

func TestBuildSystemBadPALFile(t *testing.T) {
	if _, _, err := buildSystem("/nonexistent.pal"); err == nil {
		t.Fatal("missing PAL file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.pal")
	os.WriteFile(bad, []byte("not assembly"), 0o644)
	if _, _, err := buildSystem(bad); err == nil {
		t.Fatal("bad PAL source accepted")
	}
}

func TestVerifyConnectError(t *testing.T) {
	if err := verify("127.0.0.1:1", "", attest.DefaultTimeout); err == nil {
		t.Fatal("verify against closed port succeeded")
	}
}

func TestVerifyTimeoutAgainstSilentServer(t *testing.T) {
	// A listener that accepts but never answers must surface the typed
	// timeout, not hang for the old hardcoded 10s.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold open, say nothing
		}
	}()
	start := time.Now()
	err = verify(l.Addr().String(), "", 100*time.Millisecond)
	if err == nil {
		t.Fatal("verify against silent server succeeded")
	}
	if !strings.Contains(err.Error(), "TIMED OUT") {
		t.Fatalf("error %v does not report the typed timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; flag not plumbed through", elapsed)
	}
}
