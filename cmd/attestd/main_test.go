package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/audit"
)

func TestDemoEndToEnd(t *testing.T) {
	if err := demo(attest.DefaultTimeout, ""); err != nil {
		t.Fatal(err)
	}
}

// TestDemoAuditCrossCheck runs the demo with audit logging on both ends
// and proves (a) each log verifies offline, (b) the platform's challenge
// record and the verifier's verdict share a trace ID, and (c) the
// platform log captured the late launch under an AIK-signed head.
func TestDemoAuditCrossCheck(t *testing.T) {
	dir := t.TempDir()
	if err := demo(attest.DefaultTimeout, dir); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"platform", "verifier"} {
		rep, err := audit.VerifyChain(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("%s log does not verify: %v", sub, err)
		}
		if rep.Uncovered != 0 {
			t.Fatalf("%s log has %d events outside the final head", sub, rep.Uncovered)
		}
	}
	plat, err := audit.LoadDir(filepath.Join(dir, "platform"))
	if err != nil {
		t.Fatal(err)
	}
	verif, err := audit.LoadDir(filepath.Join(dir, "verifier"))
	if err != nil {
		t.Fatal(err)
	}
	var challenge, launch *audit.Event
	for i := range plat {
		switch plat[i].Type {
		case audit.EventChallenge:
			challenge = &plat[i]
		case audit.EventLateLaunch:
			launch = &plat[i]
		}
	}
	if launch == nil {
		t.Fatal("platform log missing late_launch event")
	}
	if challenge == nil {
		t.Fatal("platform log missing challenge event")
	}
	var verdict *audit.Event
	for i := range verif {
		if verif[i].Type == audit.EventVerifyOK {
			verdict = &verif[i]
		}
	}
	if verdict == nil {
		t.Fatal("verifier log missing verify_ok event")
	}
	if verdict.Trace.IsZero() || verdict.Trace != challenge.Trace {
		t.Fatalf("trace mismatch: verifier %v vs platform %v", verdict.Trace, challenge.Trace)
	}
	if pub, err := audit.ReadAIK(filepath.Join(dir, "platform")); err != nil || pub == nil {
		t.Fatalf("platform log has no AIK public key (err=%v)", err)
	}
}

func TestServeWithAnchorsAndVerify(t *testing.T) {
	dir := t.TempDir()
	anchors := filepath.Join(dir, "anchors.gob")
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() { errs <- serve("127.0.0.1:0", "", anchors, attest.DefaultTimeout, "", ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errs:
		t.Fatal(err)
	}
	if _, err := os.Stat(anchors); err != nil {
		t.Fatalf("anchors not written: %v", err)
	}
	if err := verify(addr, anchors, attest.DefaultTimeout, ""); err != nil {
		t.Fatal(err)
	}
}

func TestServeCustomPAL(t *testing.T) {
	dir := t.TempDir()
	palSrc := filepath.Join(dir, "p.pal")
	os.WriteFile(palSrc, []byte("ldi r0, 0\nsvc 0\n"), 0o644)
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() { errs <- serve("127.0.0.1:0", palSrc, "", attest.DefaultTimeout, "", ready) }()
	select {
	case addr := <-ready:
		// The default-anchor verifier approves only the built-in PAL,
		// so verification must fail for the custom one.
		if err := verify(addr, "", attest.DefaultTimeout, ""); err == nil {
			t.Fatal("custom PAL verified against default anchors")
		}
	case err := <-errs:
		t.Fatal(err)
	}
}

func TestBuildSystemBadPALFile(t *testing.T) {
	if _, _, err := buildSystem("/nonexistent.pal"); err == nil {
		t.Fatal("missing PAL file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.pal")
	os.WriteFile(bad, []byte("not assembly"), 0o644)
	if _, _, err := buildSystem(bad); err == nil {
		t.Fatal("bad PAL source accepted")
	}
}

func TestVerifyConnectError(t *testing.T) {
	if err := verify("127.0.0.1:1", "", attest.DefaultTimeout, ""); err == nil {
		t.Fatal("verify against closed port succeeded")
	}
}

func TestVerifyTimeoutAgainstSilentServer(t *testing.T) {
	// A listener that accepts but never answers must surface the typed
	// timeout, not hang for the old hardcoded 10s.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold open, say nothing
		}
	}()
	start := time.Now()
	err = verify(l.Addr().String(), "", 100*time.Millisecond, "")
	if err == nil {
		t.Fatal("verify against silent server succeeded")
	}
	if !strings.Contains(err.Error(), "TIMED OUT") {
		t.Fatalf("error %v does not report the typed timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; flag not plumbed through", elapsed)
	}
}
