// Command attestd runs the remote-attestation loop between a simulated
// platform and an external verifier over TCP.
//
// Usage:
//
//	attestd serve -addr 127.0.0.1:7070 [-pal file.pal]
//	    Build an HP dc5750, late launch the PAL (a built-in echo PAL by
//	    default, or assembler source from -pal), and answer attestation
//	    challenges on the given address. Prints the trust anchors a
//	    verifier needs (CA key fingerprint, PAL measurement).
//
//	attestd verify -addr 127.0.0.1:7070
//	    Connect as a verifier that shares the demo trust anchors and
//	    print the verified PAL name.
//
//	attestd demo
//	    Run both sides in one process over the loopback.
//
//	attestd batch [-jobs N]
//	    Run the batched, sessionful exchange in one process over the
//	    loopback: N sePCRs parked in the Quote state, one AIK signature
//	    over a Merkle batch quote covering all of them, then a second
//	    round resumed over the session's HMAC channel with zero RSA.
package main

import (
	"crypto/rsa"
	"crypto/sha1"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/audit"
	"minimaltcb/internal/core"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

const defaultPAL = `
	ldi	r0, msg
	ldi	r1, 22
	svc	6
	ldi	r0, 0
	svc	0
msg:	.ascii "attested PAL was here!"
`

// demoSeed fixes the platform seed so `serve` and `verify` in separate
// processes share the Privacy CA trust anchor.
const demoSeed = 0x5eed

func main() {
	if len(os.Args) < 2 {
		fail(usage())
	}
	sub := os.Args[1]
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen/connect address")
	palFile := fs.String("pal", "", "PAL assembler source file (serve only)")
	anchors := fs.String("anchors", "", "trust-anchors file: written by serve, read by verify")
	timeout := fs.Duration("timeout", attest.DefaultTimeout,
		"per-exchange I/O deadline (0 disables)")
	debugAddr := fs.String("debug", "",
		"debug HTTP listen address for /metrics, /healthz, /debug/trace, /debug/pprof (serve only; \"\" disables)")
	auditDir := fs.String("audit-dir", "",
		"persist a tamper-evident audit log under this directory: serve records challenges (AIK-signed heads), verify records verdicts; cross-check the two with tcbaudit")
	jobs := fs.Int("jobs", 4, "jobs per batch quote (batch only)")
	fs.Parse(os.Args[2:])

	var err error
	switch sub {
	case "serve":
		err = serveDebug(*addr, *palFile, *anchors, *timeout, *debugAddr, *auditDir, nil)
	case "verify":
		err = verify(*addr, *anchors, *timeout, *auditDir)
	case "demo":
		err = demo(*timeout, *auditDir)
	case "batch":
		err = batchDemo(*timeout, *jobs)
	default:
		err = usage()
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "attestd: %v\n", err)
	os.Exit(1)
}

func usage() error {
	return fmt.Errorf("usage: attestd serve [-addr A] [-pal file] | attestd verify [-addr A] | attestd demo | attestd batch [-jobs N]")
}

// buildSystem assembles the shared-seed platform and PAL.
func buildSystem(palFile string) (*core.System, *core.PAL, error) {
	prof := platform.HPdc5750()
	prof.Seed = demoSeed
	sys, err := core.NewSystem(prof)
	if err != nil {
		return nil, nil, err
	}
	src := defaultPAL
	name := "attestd-demo-pal"
	if palFile != "" {
		b, err := os.ReadFile(palFile)
		if err != nil {
			return nil, nil, err
		}
		src = string(b)
		name = palFile
	}
	p, err := core.CompilePAL(name, src)
	if err != nil {
		return nil, nil, err
	}
	return sys, p, nil
}

// anchorsFile is the out-of-band trust material a cross-process verifier
// needs: the Privacy CA's public key and the approved PAL identity.
type anchorsFile struct {
	CAPub   *rsa.PublicKey
	PALName string
	PALMeas tpm.Digest
}

// serve runs the platform side with no debug server. If ready is non-nil
// the bound address is sent on it once listening (used by demo and tests).
func serve(addr, palFile, anchorsPath string, timeout time.Duration, auditDir string, ready chan<- string) error {
	return serveDebug(addr, palFile, anchorsPath, timeout, "", auditDir, ready)
}

// tpmAuditAdapter forwards TPM lifecycle events (late launch, sePCR ops)
// into the platform-side audit log. attestd's legacy profile has no SKSM
// manager to play this role, so the daemon carries its own adapter.
type tpmAuditAdapter struct{ rec *audit.Recorder }

func (a tpmAuditAdapter) TPMAuditEvent(op string, handle int, value tpm.Digest) {
	a.rec.Record(audit.Event{Type: op, Handle: handle, Value: audit.Digest20(value)})
}

// serveDebug is serve plus an optional debug HTTP server: when debugAddr
// is set, every answered challenge is counted and traced (the TPM command
// spans under it come through the machine's obs.Scope), and the /metrics,
// /healthz, /debug/trace and /debug/pprof endpoints are exposed.
func serveDebug(addr, palFile, anchorsPath string, timeout time.Duration, debugAddr, auditDir string, ready chan<- string) error {
	sys, p, err := buildSystem(palFile)
	if err != nil {
		return err
	}

	// The platform-side audit log must exist before RunLegacy so the late
	// launch itself lands on the record; its heads are signed by this
	// platform's AIK.
	var (
		alog *audit.Log
		arec *audit.Recorder
	)
	if auditDir != "" {
		alog, err = audit.Open(audit.Config{Dir: auditDir, Node: "attestd"})
		if err != nil {
			return err
		}
		defer alog.Close()
		alog.SetSigner(sys.Machine.TPM())
		arec = alog.Recorder(sys.Machine.Clock, 0)
		sys.Machine.TPM().SetAuditHook(tpmAuditAdapter{rec: arec})
		fmt.Printf("audit log in %s (AIK-signed heads; verify with tcbaudit -verify -log %s)\n", auditDir, auditDir)
	}

	// A nil tracer/scope/counter no-ops through every call below, so the
	// undebugged path stays unchanged.
	var (
		tracer     *obs.Tracer
		scope      *obs.Scope
		health     *obs.Health
		challenges *obs.Counter
		chErrors   *obs.Counter
		quoteH     *obs.Histogram
	)
	if debugAddr != "" {
		tracer = obs.NewTracer(0)
		reg := obs.NewRegistry()
		health = &obs.Health{}
		scope = obs.NewScope(tracer, sys.Machine.Clock)
		sys.Machine.TPM().SetTrace(scope)
		challenges = reg.Counter("attestd_challenges_total", "Attestation challenges answered.")
		chErrors = reg.Counter("attestd_challenge_errors_total", "Attestation challenges that failed on the platform side.")
		quoteH = reg.Histogram("attestd_quote_duration_seconds",
			"Wall-clock time to produce quote evidence per challenge.", nil)
		obs.RegisterTracerMetrics(reg, tracer)
		alog.BindRegistry(reg)
		srv, err := obs.ListenAndServeDebug(debugAddr, obs.NewDebugMux(reg, tracer, health))
		if err != nil {
			return err
		}
		defer srv.Close()
		defer health.Fail("attestd shutting down")
		fmt.Printf("debug server on http://%s (/metrics /healthz /debug/trace /debug/pprof)\n", srv.Addr())
	}
	if _, err := sys.RunLegacy(p, nil); err != nil {
		return err
	}
	fmt.Printf("platform: %s\n", sys.Machine.Profile.Name)
	fmt.Printf("PAL %q measurement: %x\n", p.Name, p.Measurement())
	fmt.Printf("CA key fingerprint: %x\n", caFingerprint(sys))
	if anchorsPath != "" {
		f, err := os.Create(anchorsPath)
		if err != nil {
			return err
		}
		err = gob.NewEncoder(f).Encode(&anchorsFile{
			CAPub: sys.CA.Public(), PALName: p.Name, PALMeas: p.Measurement(),
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing anchors: %w", err)
		}
		fmt.Printf("trust anchors written to %s\n", anchorsPath)
	}

	log := attest.Log{{PCR: 17, Description: p.Name, Measurement: p.Measurement()}}
	respond := func(ch attest.Challenge) (*attest.Evidence, error) {
		// Adopt the verifier's propagated trace context when the challenge
		// carries one, so this platform's challenge/TPM spans nest in the
		// caller's distributed trace; otherwise root a local trace.
		ctx := tracer.NewTrace()
		if id, err := obs.ParseTraceID(ch.TraceID); err == nil && !id.IsZero() {
			ctx = obs.Context{Trace: id, Span: ch.ParentSpan}
		}
		sp := tracer.StartSpan(ctx, "challenge", "attest")
		prev := scope.Swap(sp.Context())
		t0 := time.Now()
		q, _, err := sys.SEA.Quote(ch.Nonce)
		quoteH.Observe(time.Since(t0).Seconds())
		scope.Swap(prev)
		challenges.Inc()
		if err != nil {
			chErrors.Inc()
			arec.Record(audit.Event{
				Type: audit.EventChallenge, Handle: -1,
				Trace: ctx.Trace, Detail: err.Error(),
			})
			alog.Sync()
			sp.Attr("error", err.Error()).End()
			return nil, err
		}
		arec.Record(audit.Event{
			Type: audit.EventChallenge, Handle: -1,
			Trace: ctx.Trace, Value: audit.Digest20(q.Composite),
		})
		// Seal a signed head per answered challenge: the challenge that
		// just went out is immediately provable, even though serve never
		// returns (and so never reaches Close) in steady state.
		alog.Sync()
		sp.End()
		return &attest.Evidence{Cert: sys.Cert, Quote: q, Log: log}, nil
	}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("answering attestation challenges on %s\n", l.Addr())
	if ready != nil {
		ready <- l.Addr().String()
	}
	return attest.Serve(l, respond, attest.WithTimeout(timeout))
}

func caFingerprint(sys *core.System) []byte {
	sum := sha1.Sum(sys.CA.Public().N.Bytes())
	return sum[:8]
}

// verify runs the verifier side. Trust anchors come from -anchors when
// given (cross-process), otherwise from rebuilding the shared-seed system
// in this process (the demo path). With -audit-dir, the verdict lands in
// a verifier-side audit log sharing a trace ID with the platform's
// challenge record, so tcbaudit can cross-check the two ends.
func verify(addr, anchorsPath string, timeout time.Duration, auditDir string) error {
	var (
		alog *audit.Log
		arec *audit.Recorder
	)
	if auditDir != "" {
		var err error
		alog, err = audit.Open(audit.Config{Dir: auditDir, Node: "attestd-verifier"})
		if err != nil {
			return err
		}
		defer alog.Close()
		arec = alog.Recorder(nil, -1)
	}
	var v *attest.Verifier
	if anchorsPath != "" {
		f, err := os.Open(anchorsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		var a anchorsFile
		if err := gob.NewDecoder(f).Decode(&a); err != nil {
			return fmt.Errorf("reading anchors: %w", err)
		}
		v = attest.NewVerifier(a.CAPub)
		v.Approve(a.PALName, a.PALMeas)
	} else {
		sys, p, err := buildSystem("")
		if err != nil {
			return err
		}
		v = attest.NewVerifier(sys.CA.Public())
		v.Approve(p.Name, p.Measurement())
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	nonce := []byte(fmt.Sprintf("attestd-nonce-%d", os.Getpid()))
	opts := []attest.Option{attest.WithTimeout(timeout)}
	var trace obs.TraceID
	if arec != nil {
		// Mint a trace ID and propagate it on the challenge so the
		// platform's challenge record and this verdict share one ID.
		tr := obs.NewTracer(0)
		tr.SetNode(obs.NewNodeID())
		ctx := tr.NewTrace()
		trace = ctx.Trace
		opts = append(opts, attest.WithTraceContext(trace.String(), ctx.Span))
	}
	name, err := v.ChallengeAndVerify(conn, nonce, false, 0, opts...)
	if err != nil {
		arec.Record(audit.Event{
			Type: audit.EventVerifyFail, Handle: -1,
			Trace: trace, Detail: err.Error(),
		})
		var te *attest.TimeoutError
		if errors.As(err, &te) {
			return fmt.Errorf("attestation TIMED OUT (%s after %v): %w", te.Op, te.Limit, err)
		}
		return fmt.Errorf("attestation REJECTED: %w", err)
	}
	arec.Record(audit.Event{
		Type: audit.EventVerifyOK, Handle: -1,
		Trace: trace, Detail: name,
	})
	fmt.Printf("attestation verified: platform ran %q under late launch\n", name)
	return nil
}

// batchDemo runs the batched, sessionful exchange end to end in one
// process: a chip with `jobs` registers parked in the Quote state answers
// batch challenges over the loopback. Round one opens a session — the AIK
// certificate chain and the TPM's signed session grant are verified once.
// Round two resumes the session: the batch is admitted over the HMAC
// channel with zero RSA operations on either side, which is the steady
// state palservd's batcher runs in.
func batchDemo(timeout time.Duration, jobs int) error {
	if jobs < 1 {
		return fmt.Errorf("batch: -jobs must be >= 1, got %d", jobs)
	}
	clock := sim.NewClock()
	// A sePCR quote consumes the register, so each round needs its own
	// set: 2*jobs registers, the first half for the opening batch, the
	// second for the resumed one.
	chip, err := tpm.New(clock, lpc.NewBus(clock, lpc.FullSpeed()),
		tpm.Config{KeyBits: 1024, Seed: demoSeed, NumSePCRs: 2 * jobs})
	if err != nil {
		return err
	}
	ca, err := attest.NewPrivacyCA(demoSeed, 1024)
	if err != nil {
		return err
	}
	cert, err := ca.Certify("attestd-batch", chip.AIKPublic())
	if err != nil {
		return err
	}
	v := attest.NewVerifier(ca.Public())

	// Park one register per job in the Quote state: allocate with the
	// PAL's measurement, then release execute access so only quoting
	// remains — exactly the state palservd leaves registers in between a
	// PAL's exit and its batched quote.
	handles := make([]int, 2*jobs)
	logs := map[int]attest.Log{}
	for i := 0; i < 2*jobs; i++ {
		name := fmt.Sprintf("batch-pal-%d", i)
		meas := tpm.Measure([]byte(name))
		v.Approve(name, meas)
		h, err := chip.AllocateSePCR(i, meas)
		if err != nil {
			return err
		}
		if err := chip.ReleaseSePCR(h, i); err != nil {
			return err
		}
		handles[i] = h
		logs[h] = attest.Log{{PCR: -1, Description: name, Measurement: meas}}
	}

	// The platform remembers the session it opened and keeps MACing
	// later batches under it — that is what lets the verifier resume
	// without re-checking the certificate chain.
	var sessionID uint64
	respond := func(ch attest.Challenge) (*attest.Evidence, error) {
		if !ch.Batch {
			return nil, errors.New("batch demo answers batch challenges only")
		}
		ev := &attest.Evidence{Cert: cert}
		if ch.OpenSession {
			grant, err := chip.OpenQuoteSession(ch.Nonce)
			if err != nil {
				return nil, err
			}
			ev.Grant = grant
			sessionID = grant.ID
		}
		reqs := make([]tpm.BatchRequest, len(ch.Handles))
		for i, h := range ch.Handles {
			reqs[i] = tpm.BatchRequest{Handle: h, Nonce: ch.JobNonces[i]}
		}
		q, err := chip.QuoteSePCRBatch(reqs, ch.Nonce, sessionID)
		if err != nil {
			return nil, err
		}
		ev.Batch = q
		ev.Logs = make([]attest.Log, len(ch.Handles))
		for i, h := range ch.Handles {
			ev.Logs[i] = logs[h]
		}
		return ev, nil
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go func() { _ = attest.Serve(l, respond, attest.WithTimeout(timeout)) }()
	round := func(n int) [][]byte {
		out := make([][]byte, jobs)
		for i := range out {
			out[i] = []byte(fmt.Sprintf("batch-r%d-job-%d-%d", n, i, os.Getpid()))
		}
		return out
	}
	opts := []attest.Option{attest.WithTimeout(timeout)}

	// Round 1: open the session. One AIK signature covers the whole batch
	// (the Merkle root), one more covers the session grant.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return err
	}
	first, second := handles[:jobs], handles[jobs:]
	sess, ev, err := v.OpenRemoteSession(conn, []byte(fmt.Sprintf("open-%d", os.Getpid())),
		first, round(1), opts...)
	if err != nil {
		return fmt.Errorf("batched attestation REJECTED: %w", err)
	}
	names := make([]string, jobs)
	for i := range first {
		name, err := v.VerifyBatchedQuote(cert, ev.Batch, i, logs[first[i]], round(1)[i])
		if err != nil {
			return fmt.Errorf("inclusion proof for job %d REJECTED: %w", i, err)
		}
		names[i] = name
	}
	fmt.Printf("platform %q: batch of %d verified with one AIK quote signature\n",
		sess.PlatformID(), jobs)
	fmt.Printf("  merkle root %x covers jobs %v\n", ev.Batch.Root[:8], names)

	// Round 2: resume. The grant is not re-sent and no RSA runs — the
	// batch is admitted over the session's HMAC channel.
	conn2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return err
	}
	names2, err := v.ChallengeAndVerifyBatch(conn2, sess, []byte(fmt.Sprintf("resume-%d", os.Getpid())),
		second, round(2), opts...)
	if err != nil {
		return fmt.Errorf("session resume REJECTED: %w", err)
	}
	fmt.Printf("session resumed: batch of %d verified over HMAC, zero RSA (batches admitted on this session: %d)\n",
		len(names2), sess.Batches())
	fmt.Println("batch demo complete")
	return nil
}

// demo runs both halves over the loopback. With -audit-dir, the platform
// and verifier logs land in <dir>/platform and <dir>/verifier.
func demo(timeout time.Duration, auditDir string) error {
	serveDir, verifyDir := "", ""
	if auditDir != "" {
		serveDir = auditDir + "/platform"
		verifyDir = auditDir + "/verifier"
	}
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() { errs <- serve("127.0.0.1:0", "", "", timeout, serveDir, ready) }()
	select {
	case addr := <-ready:
		if err := verify(addr, "", timeout, verifyDir); err != nil {
			return err
		}
		fmt.Println("demo complete")
		return nil
	case err := <-errs:
		return err
	}
}
