// Command attestd runs the remote-attestation loop between a simulated
// platform and an external verifier over TCP.
//
// Usage:
//
//	attestd serve -addr 127.0.0.1:7070 [-pal file.pal]
//	    Build an HP dc5750, late launch the PAL (a built-in echo PAL by
//	    default, or assembler source from -pal), and answer attestation
//	    challenges on the given address. Prints the trust anchors a
//	    verifier needs (CA key fingerprint, PAL measurement).
//
//	attestd verify -addr 127.0.0.1:7070
//	    Connect as a verifier that shares the demo trust anchors and
//	    print the verified PAL name.
//
//	attestd demo
//	    Run both sides in one process over the loopback.
package main

import (
	"crypto/rsa"
	"crypto/sha1"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/core"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/tpm"
)

const defaultPAL = `
	ldi	r0, msg
	ldi	r1, 22
	svc	6
	ldi	r0, 0
	svc	0
msg:	.ascii "attested PAL was here!"
`

// demoSeed fixes the platform seed so `serve` and `verify` in separate
// processes share the Privacy CA trust anchor.
const demoSeed = 0x5eed

func main() {
	if len(os.Args) < 2 {
		fail(usage())
	}
	sub := os.Args[1]
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen/connect address")
	palFile := fs.String("pal", "", "PAL assembler source file (serve only)")
	anchors := fs.String("anchors", "", "trust-anchors file: written by serve, read by verify")
	timeout := fs.Duration("timeout", attest.DefaultTimeout,
		"per-exchange I/O deadline (0 disables)")
	debugAddr := fs.String("debug", "",
		"debug HTTP listen address for /metrics, /healthz, /debug/trace, /debug/pprof (serve only; \"\" disables)")
	fs.Parse(os.Args[2:])

	var err error
	switch sub {
	case "serve":
		err = serveDebug(*addr, *palFile, *anchors, *timeout, *debugAddr, nil)
	case "verify":
		err = verify(*addr, *anchors, *timeout)
	case "demo":
		err = demo(*timeout)
	default:
		err = usage()
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "attestd: %v\n", err)
	os.Exit(1)
}

func usage() error {
	return fmt.Errorf("usage: attestd serve [-addr A] [-pal file] | attestd verify [-addr A] | attestd demo")
}

// buildSystem assembles the shared-seed platform and PAL.
func buildSystem(palFile string) (*core.System, *core.PAL, error) {
	prof := platform.HPdc5750()
	prof.Seed = demoSeed
	sys, err := core.NewSystem(prof)
	if err != nil {
		return nil, nil, err
	}
	src := defaultPAL
	name := "attestd-demo-pal"
	if palFile != "" {
		b, err := os.ReadFile(palFile)
		if err != nil {
			return nil, nil, err
		}
		src = string(b)
		name = palFile
	}
	p, err := core.CompilePAL(name, src)
	if err != nil {
		return nil, nil, err
	}
	return sys, p, nil
}

// anchorsFile is the out-of-band trust material a cross-process verifier
// needs: the Privacy CA's public key and the approved PAL identity.
type anchorsFile struct {
	CAPub   *rsa.PublicKey
	PALName string
	PALMeas tpm.Digest
}

// serve runs the platform side with no debug server. If ready is non-nil
// the bound address is sent on it once listening (used by demo and tests).
func serve(addr, palFile, anchorsPath string, timeout time.Duration, ready chan<- string) error {
	return serveDebug(addr, palFile, anchorsPath, timeout, "", ready)
}

// serveDebug is serve plus an optional debug HTTP server: when debugAddr
// is set, every answered challenge is counted and traced (the TPM command
// spans under it come through the machine's obs.Scope), and the /metrics,
// /healthz, /debug/trace and /debug/pprof endpoints are exposed.
func serveDebug(addr, palFile, anchorsPath string, timeout time.Duration, debugAddr string, ready chan<- string) error {
	sys, p, err := buildSystem(palFile)
	if err != nil {
		return err
	}

	// A nil tracer/scope/counter no-ops through every call below, so the
	// undebugged path stays unchanged.
	var (
		tracer     *obs.Tracer
		scope      *obs.Scope
		health     *obs.Health
		challenges *obs.Counter
		chErrors   *obs.Counter
		quoteH     *obs.Histogram
	)
	if debugAddr != "" {
		tracer = obs.NewTracer(0)
		reg := obs.NewRegistry()
		health = &obs.Health{}
		scope = obs.NewScope(tracer, sys.Machine.Clock)
		sys.Machine.TPM().SetTrace(scope)
		challenges = reg.Counter("attestd_challenges_total", "Attestation challenges answered.")
		chErrors = reg.Counter("attestd_challenge_errors_total", "Attestation challenges that failed on the platform side.")
		quoteH = reg.Histogram("attestd_quote_duration_seconds",
			"Wall-clock time to produce quote evidence per challenge.", nil)
		obs.RegisterTracerMetrics(reg, tracer)
		srv, err := obs.ListenAndServeDebug(debugAddr, obs.NewDebugMux(reg, tracer, health))
		if err != nil {
			return err
		}
		defer srv.Close()
		defer health.Fail("attestd shutting down")
		fmt.Printf("debug server on http://%s (/metrics /healthz /debug/trace /debug/pprof)\n", srv.Addr())
	}
	if _, err := sys.RunLegacy(p, nil); err != nil {
		return err
	}
	fmt.Printf("platform: %s\n", sys.Machine.Profile.Name)
	fmt.Printf("PAL %q measurement: %x\n", p.Name, p.Measurement())
	fmt.Printf("CA key fingerprint: %x\n", caFingerprint(sys))
	if anchorsPath != "" {
		f, err := os.Create(anchorsPath)
		if err != nil {
			return err
		}
		err = gob.NewEncoder(f).Encode(&anchorsFile{
			CAPub: sys.CA.Public(), PALName: p.Name, PALMeas: p.Measurement(),
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing anchors: %w", err)
		}
		fmt.Printf("trust anchors written to %s\n", anchorsPath)
	}

	log := attest.Log{{PCR: 17, Description: p.Name, Measurement: p.Measurement()}}
	respond := func(ch attest.Challenge) (*attest.Evidence, error) {
		// Adopt the verifier's propagated trace context when the challenge
		// carries one, so this platform's challenge/TPM spans nest in the
		// caller's distributed trace; otherwise root a local trace.
		ctx := tracer.NewTrace()
		if id, err := obs.ParseTraceID(ch.TraceID); err == nil && !id.IsZero() {
			ctx = obs.Context{Trace: id, Span: ch.ParentSpan}
		}
		sp := tracer.StartSpan(ctx, "challenge", "attest")
		prev := scope.Swap(sp.Context())
		t0 := time.Now()
		q, _, err := sys.SEA.Quote(ch.Nonce)
		quoteH.Observe(time.Since(t0).Seconds())
		scope.Swap(prev)
		challenges.Inc()
		if err != nil {
			chErrors.Inc()
			sp.Attr("error", err.Error()).End()
			return nil, err
		}
		sp.End()
		return &attest.Evidence{Cert: sys.Cert, Quote: q, Log: log}, nil
	}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("answering attestation challenges on %s\n", l.Addr())
	if ready != nil {
		ready <- l.Addr().String()
	}
	return attest.Serve(l, respond, attest.WithTimeout(timeout))
}

func caFingerprint(sys *core.System) []byte {
	sum := sha1.Sum(sys.CA.Public().N.Bytes())
	return sum[:8]
}

// verify runs the verifier side. Trust anchors come from -anchors when
// given (cross-process), otherwise from rebuilding the shared-seed system
// in this process (the demo path).
func verify(addr, anchorsPath string, timeout time.Duration) error {
	var v *attest.Verifier
	if anchorsPath != "" {
		f, err := os.Open(anchorsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		var a anchorsFile
		if err := gob.NewDecoder(f).Decode(&a); err != nil {
			return fmt.Errorf("reading anchors: %w", err)
		}
		v = attest.NewVerifier(a.CAPub)
		v.Approve(a.PALName, a.PALMeas)
	} else {
		sys, p, err := buildSystem("")
		if err != nil {
			return err
		}
		v = attest.NewVerifier(sys.CA.Public())
		v.Approve(p.Name, p.Measurement())
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	nonce := []byte(fmt.Sprintf("attestd-nonce-%d", os.Getpid()))
	name, err := v.ChallengeAndVerify(conn, nonce, false, 0, attest.WithTimeout(timeout))
	if err != nil {
		var te *attest.TimeoutError
		if errors.As(err, &te) {
			return fmt.Errorf("attestation TIMED OUT (%s after %v): %w", te.Op, te.Limit, err)
		}
		return fmt.Errorf("attestation REJECTED: %w", err)
	}
	fmt.Printf("attestation verified: platform ran %q under late launch\n", name)
	return nil
}

// demo runs both halves over the loopback.
func demo(timeout time.Duration) error {
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() { errs <- serve("127.0.0.1:0", "", "", timeout, ready) }()
	select {
	case addr := <-ready:
		if err := verify(addr, "", timeout); err != nil {
			return err
		}
		fmt.Println("demo complete")
		return nil
	case err := <-errs:
		return err
	}
}
