// Command seabench regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md lists, as text tables or
// plot-ready CSV.
//
// Usage:
//
//	seabench                  # everything
//	seabench -table 1         # just Table 1
//	seabench -figure 3        # just Figure 3
//	seabench -impact          # §5.7 context-switch comparison
//	seabench -concurrency     # legacy-throughput sweep
//	seabench -ablations       # the ablation studies
//	seabench -trials 100      # paper-grade trial counts
//	seabench -format csv      # machine-readable export
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"minimaltcb/internal/experiments"
)

// selection names which artefacts to render; the zero value means all.
type selection struct {
	table       int
	figure      int
	impact      bool
	concurrency bool
	ablations   bool
}

func (s selection) restricted() bool {
	return s.table != 0 || s.figure != 0 || s.impact || s.concurrency || s.ablations
}

func main() {
	var (
		sel    selection
		trials = flag.Int("trials", 20, "trials per data point")
		seed   = flag.Uint64("seed", 42, "simulation seed")
		format = flag.String("format", "text", "output format: text | csv")
		verify = flag.Bool("verify", false, "compare every regenerated number against the paper and exit non-zero on failure")
	)
	flag.IntVar(&sel.table, "table", 0, "render only this table (1 or 2)")
	flag.IntVar(&sel.figure, "figure", 0, "render only this figure (2 or 3)")
	flag.BoolVar(&sel.impact, "impact", false, "render only the §5.7 impact comparison")
	flag.BoolVar(&sel.concurrency, "concurrency", false, "render only the concurrency sweep")
	flag.BoolVar(&sel.ablations, "ablations", false, "render only the ablation studies")
	flag.Parse()

	cfg := experiments.Config{Trials: *trials, KeyBits: 1024, Seed: *seed}
	if *verify {
		checks, err := experiments.VerifyAll(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seabench: verify: %v\n", err)
			os.Exit(1)
		}
		if failed := experiments.RenderVerify(os.Stdout, checks); failed > 0 {
			os.Exit(1)
		}
		return
	}
	if err := runSeabench(os.Stdout, cfg, sel, *format); err != nil {
		fmt.Fprintf(os.Stderr, "seabench: %v\n", err)
		os.Exit(1)
	}
}

// runSeabench renders the selected artefacts to out.
func runSeabench(out io.Writer, cfg experiments.Config, sel selection, format string) error {
	switch format {
	case "csv":
		return experiments.WriteAllCSV(out, cfg)
	case "text":
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	all := !sel.restricted()

	if all || sel.table == 1 {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		experiments.RenderTable1(out, rows)
		fmt.Fprintln(out)
	}
	if all || sel.figure == 2 {
		bars, err := experiments.Figure2(cfg)
		if err != nil {
			return fmt.Errorf("figure 2: %w", err)
		}
		experiments.RenderFigure2(out, bars)
		fmt.Fprintln(out)
	}
	if all || sel.figure == 3 {
		rows, err := experiments.Figure3(cfg)
		if err != nil {
			return fmt.Errorf("figure 3: %w", err)
		}
		experiments.RenderFigure3(out, rows)
		fmt.Fprintln(out)
	}
	if all || sel.table == 2 {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		experiments.RenderTable2(out, rows)
		fmt.Fprintln(out)
	}
	if all || sel.impact {
		r, err := experiments.Impact(cfg)
		if err != nil {
			return fmt.Errorf("impact: %w", err)
		}
		experiments.RenderImpact(out, r)
		fmt.Fprintln(out)
	}
	if all || sel.concurrency {
		pts, err := experiments.Concurrency(cfg, nil)
		if err != nil {
			return fmt.Errorf("concurrency: %w", err)
		}
		experiments.RenderConcurrency(out, pts)
		fmt.Fprintln(out)
	}
	if all || sel.ablations {
		if err := runAblations(out, cfg); err != nil {
			return err
		}
	}
	return nil
}

// runAblations renders the ablation studies.
func runAblations(out io.Writer, cfg experiments.Config) error {
	hl, err := experiments.AblationHashLocation(cfg, nil)
	if err != nil {
		return fmt.Errorf("ablation hash-location: %w", err)
	}
	experiments.RenderHashLocation(out, hl)
	fmt.Fprintln(out)

	tw, err := experiments.AblationTPMWait(cfg)
	if err != nil {
		return fmt.Errorf("ablation tpm-wait: %w", err)
	}
	experiments.RenderTPMWait(out, tw)
	fmt.Fprintln(out)

	sp, err := experiments.AblationSePCRCount(cfg, 8, nil)
	if err != nil {
		return fmt.Errorf("ablation sePCR-count: %w", err)
	}
	experiments.RenderSePCRCount(out, sp)
	fmt.Fprintln(out)

	qp, err := experiments.AblationQuantum(cfg, nil)
	if err != nil {
		return fmt.Errorf("ablation quantum: %w", err)
	}
	experiments.RenderQuantum(out, qp)
	fmt.Fprintln(out)

	pp, err := experiments.AblationSealPayload(cfg, nil)
	if err != nil {
		return fmt.Errorf("ablation seal-payload: %w", err)
	}
	experiments.RenderSealPayload(out, pp)
	fmt.Fprintln(out)

	xp, err := experiments.AblationFigure2CrossPlatform(cfg)
	if err != nil {
		return fmt.Errorf("ablation cross-platform: %w", err)
	}
	experiments.RenderCrossPlatform(out, xp)
	fmt.Fprintln(out)

	ts, err := experiments.AblationTwoStageAMD(cfg, nil)
	if err != nil {
		return fmt.Errorf("ablation two-stage: %w", err)
	}
	experiments.RenderTwoStage(out, ts)
	fmt.Fprintln(out)

	experiments.RenderTCBSizes(out, experiments.TCBSizes())
	fmt.Fprintln(out)
	return nil
}
