package main

import (
	"bytes"
	"strings"
	"testing"

	"minimaltcb/internal/experiments"
)

func quick() experiments.Config {
	return experiments.Config{Trials: 1, KeyBits: 1024, Seed: 42}
}

func TestRunSeabenchSingleArtefacts(t *testing.T) {
	cases := []struct {
		sel  selection
		want string
	}{
		{selection{table: 1}, "Table 1"},
		{selection{table: 2}, "Table 2"},
		{selection{figure: 2}, "Figure 2"},
		{selection{figure: 3}, "Figure 3"},
		{selection{impact: true}, "Section 5.7"},
		{selection{concurrency: true}, "Concurrency"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := runSeabench(&buf, quick(), c.sel, "text"); err != nil {
			t.Fatalf("%+v: %v", c.sel, err)
		}
		out := buf.String()
		if !strings.Contains(out, c.want) {
			t.Errorf("%+v: output missing %q", c.sel, c.want)
		}
		// Restricted selections must not render everything.
		if c.want != "Table 1" && strings.Contains(out, "Table 1.") {
			t.Errorf("%+v: rendered Table 1 too", c.sel)
		}
	}
}

func TestRunSeabenchAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := runSeabench(&buf, quick(), selection{ablations: true}, "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"hash location", "long-wait cycles", "sePCR provisioning",
		"preemption quantum", "Seal latency", "across TPM vendors",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations output missing %q", want)
		}
	}
}

func TestRunSeabenchCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := runSeabench(&buf, quick(), selection{}, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# table1") {
		t.Fatal("csv output missing sections")
	}
}

func TestRunSeabenchBadFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := runSeabench(&buf, quick(), selection{}, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
