// Command tcbaudit queries and verifies the tamper-evident attestation
// audit logs the execution stack writes (palservd/palrouter/attestd with
// -audit-dir; see internal/audit and docs/AUDIT.md).
//
// Every trust-relevant lifecycle event — late launch, sePCR extend/quote,
// seal/unseal, PAL fault, admission rejection, attestation verdict — is a
// leaf in a per-node Merkle tree whose heads the node's AIK signs. This
// tool is the relying party's half: it reads a log directory offline (no
// daemon, no network) and replays the inclusion and consistency proofs
// against the saved signed heads, or tails a live fleet over the wire.
//
// Usage:
//
//	tcbaudit -log DIR [-tenant T] [-trace ID] [-image HEXPREFIX] [-since N] [-n N]
//	    Print matching events from an audit log directory, newest -n
//	    (default 64) of them, oldest first. Entirely offline.
//
//	tcbaudit -log DIR -verify
//	    Recompute every leaf and root, check head signatures against the
//	    saved AIK, replay consistency proofs between consecutive heads and
//	    inclusion proofs for every covered event. Exits 1 and lists the
//	    problems if anything fails to verify — a byte flipped anywhere in
//	    the log, the heads, or the binary mirror is caught here.
//
//	tcbaudit -addr HOST:PORT [-stitch] [filters...]
//	    Tail a live palservd (or palrouter) over the wire protocol's audit
//	    op. -stitch against a palrouter prints the whole fleet: the
//	    router's control-plane log plus every backend's, each under its
//	    own node name and signed head.
//
// -json switches any mode to machine-readable output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/palsvc"
)

func main() {
	var (
		logDir  = flag.String("log", "", "audit log directory to read offline")
		addr    = flag.String("addr", "", "live palservd/palrouter wire address to query instead of -log")
		stitch  = flag.Bool("stitch", false, "with -addr against a palrouter: print the fleet view, one section per node")
		verify  = flag.Bool("verify", false, "with -log: replay all proofs offline; exit 1 on any tamper evidence")
		tenant  = flag.String("tenant", "", "only events for this tenant")
		trace   = flag.String("trace", "", "only events on this trace ID (decimal or 32-hex cluster form)")
		image   = flag.String("image", "", "only events whose PAL measurement starts with this hex prefix")
		since   = flag.Uint64("since", 0, "only events with seq >= this")
		limit   = flag.Int("n", 64, "newest N matching events (0 = server/default cap)")
		asJSON  = flag.Bool("json", false, "machine-readable JSON output")
		timeout = flag.Duration("timeout", 5*time.Second, "wire dial + per-request deadline")
	)
	flag.Parse()

	var err error
	switch {
	case *verify:
		if *logDir == "" {
			err = fmt.Errorf("-verify needs -log DIR")
		} else {
			err = runVerify(*logDir, *asJSON)
		}
	case *logDir != "":
		err = runOffline(*logDir, query(*tenant, *trace, *image, *since, *limit), *asJSON)
	case *addr != "":
		err = runWire(*addr, *stitch, wireReq(*tenant, *trace, *image, *since, *limit), *timeout, *asJSON)
	default:
		err = fmt.Errorf("need -log DIR or -addr HOST:PORT (and -verify to prove a log)")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbaudit: %v\n", err)
		os.Exit(1)
	}
}

func query(tenant, trace, image string, since uint64, limit int) audit.Query {
	q := audit.Query{Tenant: tenant, Image: image, Since: since, Limit: limit}
	if trace != "" {
		id, err := obs.ParseTraceID(trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbaudit: -trace: %v\n", err)
			os.Exit(1)
		}
		q.Trace = id
	}
	return q
}

func wireReq(tenant, trace, image string, since uint64, limit int) *palsvc.WireRequest {
	return &palsvc.WireRequest{
		Tenant: tenant, TraceID: trace, Image: image, Since: since, Limit: limit,
	}
}

// runVerify replays the whole proof chain offline and reports.
func runVerify(dir string, asJSON bool) error {
	rep, err := audit.VerifyChain(dir)
	if err != nil {
		return err
	}
	if asJSON {
		out, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Println(string(out))
	} else {
		fmt.Println(rep)
	}
	return rep.Err()
}

// runOffline prints matching events straight from the segment files.
func runOffline(dir string, q audit.Query, asJSON bool) error {
	events, err := audit.LoadDir(dir)
	if err != nil {
		return err
	}
	matched, truncated := audit.FilterEvents(events, q)
	if asJSON {
		out, jerr := json.MarshalIndent(matched, "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Println(string(out))
		return nil
	}
	for i := range matched {
		fmt.Println(eventLine(&matched[i]))
	}
	fmt.Printf("%d event(s) in %s (%d matched, %d older matches cut by -n)\n",
		len(events), dir, len(matched)+truncated, truncated)
	return nil
}

// runWire tails a live daemon; with stitch the nested per-node dumps are
// printed as their own sections.
func runWire(addr string, stitch bool, req *palsvc.WireRequest, timeout time.Duration, asJSON bool) error {
	c, err := palsvc.Dial(addr, timeout)
	if err != nil {
		return err
	}
	defer c.Close()
	dump, err := c.Audit(req)
	if err != nil {
		return err
	}
	if asJSON {
		out, jerr := json.MarshalIndent(dump, "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Println(string(out))
		return nil
	}
	printDump(dump)
	if stitch {
		for i := range dump.Nodes {
			fmt.Println()
			printDump(&dump.Nodes[i])
		}
	} else if len(dump.Nodes) > 0 {
		fmt.Printf("(+%d backend log(s); rerun with -stitch to print them)\n", len(dump.Nodes))
	}
	return nil
}

func printDump(d *palsvc.AuditDump) {
	head := "no head yet"
	if d.Head != nil {
		signed := "unsigned"
		if len(d.Head.Sig) > 0 {
			signed = "AIK-signed"
		}
		head = fmt.Sprintf("head size=%d root=%s (%s)", d.Head.Size, d.Head.Root, signed)
	}
	fmt.Printf("== %s: %d event(s), %d dropped, %s\n", d.Node, d.Size, d.Dropped, head)
	for i := range d.Events {
		fmt.Println(eventLine(&d.Events[i]))
	}
	if d.Truncated > 0 {
		fmt.Printf("(%d older match(es) beyond the limit)\n", d.Truncated)
	}
}

// eventLine renders one event the way the docs quote it: stable columns
// first, then the optional identity and payload fields.
func eventLine(e *audit.Event) string {
	s := fmt.Sprintf("%6d %12dns m%-2d %-14s", e.Seq, e.VirtNS, e.Machine, e.Type)
	if e.Tenant != "" {
		s += " tenant=" + e.Tenant
	}
	if !e.Trace.IsZero() {
		s += " trace=" + e.Trace.String()
	}
	if e.Handle >= 0 {
		s += fmt.Sprintf(" handle=%d", e.Handle)
	}
	if !e.Image.IsZero() {
		s += " image=" + e.Image.String()[:12]
	}
	if !e.Value.IsZero() {
		s += " value=" + e.Value.String()[:12]
	}
	if e.Detail != "" {
		s += " detail=" + e.Detail
	}
	return s
}
