package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/palsvc"
	"minimaltcb/internal/platform"
)

// writeLog populates an audit log with a few events and seals it.
func writeLog(t *testing.T, dir string) {
	t.Helper()
	l, err := audit.Open(audit.Config{Dir: dir, Node: "test"})
	if err != nil {
		t.Fatal(err)
	}
	rec := l.Recorder(nil, 0)
	for i := 0; i < 10; i++ {
		ten := "alice"
		if i%2 == 1 {
			ten = "bob"
		}
		rec.Record(audit.Event{Type: audit.EventSLaunch, Handle: i, Tenant: ten})
	}
	l.Close()
}

func TestOfflineQueryAndVerify(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir)
	if err := runOffline(dir, audit.Query{Tenant: "alice", Limit: 3}, false); err != nil {
		t.Fatal(err)
	}
	if err := runOffline(dir, audit.Query{}, true); err != nil {
		t.Fatal(err)
	}
	if err := runVerify(dir, false); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir)
	seg := filepath.Join(dir, "seg-000001.jsonl")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the tenant of the first matching event: "alice" -> "alicf".
	b = bytes.Replace(b, []byte(`"alice"`), []byte(`"alicf"`), 1)
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runVerify(dir, false); err == nil {
		t.Fatal("tampered log verified clean")
	}
}

func TestWireQuery(t *testing.T) {
	dir := t.TempDir()
	alog, err := audit.Open(audit.Config{Dir: dir, Node: "palservd"})
	if err != nil {
		t.Fatal(err)
	}
	prof := platform.Recommended(platform.HPdc5750(), 2)
	prof.KeyBits = 512
	prof.Seed = 7
	s, err := palsvc.New(palsvc.Config{Profile: prof, Machines: 1, QueueDepth: 8, Audit: alog})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Serve(l, 10*time.Second) }()
	defer s.Close()

	cl, err := palsvc.Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Run(&palsvc.WireRequest{Name: "p", Source: "ldi r0, 0\nsvc 0\n", NoAttest: true})
	cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("run failed: %s", resp.Err)
	}

	if err := runWire(l.Addr().String(), false, &palsvc.WireRequest{}, 5*time.Second, false); err != nil {
		t.Fatal(err)
	}
	if err := runWire(l.Addr().String(), true, &palsvc.WireRequest{Limit: 4}, 5*time.Second, true); err != nil {
		t.Fatal(err)
	}

	// The served job's lifecycle must be on the record.
	dump, err := func() (*palsvc.AuditDump, error) {
		c, err := palsvc.Dial(l.Addr().String(), 5*time.Second)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return c.Audit(&palsvc.WireRequest{})
	}()
	if err != nil {
		t.Fatal(err)
	}
	var sawLaunch bool
	for _, e := range dump.Events {
		if e.Type == audit.EventSLaunch {
			sawLaunch = true
		}
	}
	if !sawLaunch {
		t.Fatalf("no slaunch event in wire dump of %d events", len(dump.Events))
	}
}
