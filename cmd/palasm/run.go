package main

import (
	"fmt"
	"os"
	"time"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/sim"
)

// runPAL executes a PAL standalone on a bare rig: no OS, no TPM — just the
// interpreter with the I/O services, for developing and debugging PAL
// programs before deploying them into a full platform. The input channel
// is fed from -in; output goes to stdout.
//
//	palasm run file.pal [-in inputfile] [-trace] [-max N]
func runPAL(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: palasm run <src.pal|image.slb> [-in file] [-trace] [-max instrs]")
	}
	path := args[0]
	var input []byte
	trace := false
	maxInstr := int64(10_000_000)
	for i := 1; i < len(args); i++ {
		switch args[i] {
		case "-in":
			if i+1 >= len(args) {
				return fmt.Errorf("-in needs a file")
			}
			b, err := os.ReadFile(args[i+1])
			if err != nil {
				return err
			}
			input = b
			i++
		case "-trace":
			trace = true
		case "-max":
			if i+1 >= len(args) {
				return fmt.Errorf("-max needs a count")
			}
			if _, err := fmt.Sscanf(args[i+1], "%d", &maxInstr); err != nil {
				return fmt.Errorf("bad -max: %v", err)
			}
			i++
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Accept either assembler source or a prebuilt SLB image.
	var image pal.Image
	if _, _, err := pal.ParseHeader(raw); err == nil && len(raw) >= pal.HeaderSize {
		if l, e, err := pal.ParseHeader(raw); err == nil && l == len(raw) {
			image = pal.Image{Bytes: raw, Entry: e}
		}
	}
	if image.Bytes == nil {
		image, err = pal.Build(string(raw))
		if err != nil {
			return fmt.Errorf("assembling %s: %w", path, err)
		}
	}

	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(1<<20), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	core := cpu.New(0, cpu.ParamsAMDdc5750(), cs)
	base := uint32(16 * mem.PageSize)
	if err := cs.Memory().WriteRaw(base, image.Bytes); err != nil {
		return err
	}
	core.Reset()
	core.EnterRegion(mem.Region{Base: base, Size: image.Len()}, image.Entry)

	var output []byte
	rng := sim.NewRNG(1)
	core.SetService(func(c *cpu.CPU, num uint16) (cpu.SvcAction, error) {
		switch num {
		case cpu.SvcNumExit:
			return cpu.SvcExit, nil
		case cpu.SvcNumYield:
			// Standalone runner: a yield just continues.
			return cpu.SvcContinue, nil
		case cpu.SvcNumRandom:
			b := make([]byte, int(c.Regs[1]))
			rng.Fill(b)
			if err := c.WriteBytes(c.Regs[0], b); err != nil {
				return 0, err
			}
			return cpu.SvcContinue, nil
		case cpu.SvcNumOutput:
			b, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
			if err != nil {
				return 0, err
			}
			output = append(output, b...)
			return cpu.SvcContinue, nil
		case cpu.SvcNumInput:
			n := int(c.Regs[1])
			if n > len(input) {
				n = len(input)
			}
			if err := c.WriteBytes(c.Regs[0], input[:n]); err != nil {
				return 0, err
			}
			c.Regs[0] = uint32(n)
			return cpu.SvcContinue, nil
		case cpu.SvcNumGetTime:
			c.Regs[0] = uint32(clock.Now())
			return cpu.SvcContinue, nil
		}
		return 0, fmt.Errorf("service %d unavailable in the standalone runner (needs a TPM platform)", num)
	})
	if trace {
		core.SetTracer(func(c *cpu.CPU, pc uint32, in isa.Instruction) {
			fmt.Fprintf(os.Stderr, "%6d  %04x:  %-24s r0=%08x r1=%08x sp=%08x\n",
				c.Retired, pc, in, c.Regs[0], c.Regs[1], c.Regs[7])
		})
	}

	for {
		reason, err := core.Run(time.Duration(maxInstr) * core.Params.InstrCost)
		if err != nil {
			return fmt.Errorf("PAL fault after %d instructions: %w", core.Retired, err)
		}
		if reason == cpu.StopPreempted {
			return fmt.Errorf("instruction budget (%d) exhausted; raise with -max", maxInstr)
		}
		if reason == cpu.StopHalt {
			break
		}
	}
	if len(output) > 0 {
		os.Stdout.Write(output)
		if output[len(output)-1] != '\n' {
			fmt.Println()
		}
	}
	fmt.Fprintf(os.Stderr, "exit status %d after %d instructions, %v virtual time\n",
		core.Regs[0], core.Retired, clock.Now())
	return nil
}
