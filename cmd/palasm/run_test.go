package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunPALFromSource(t *testing.T) {
	src := writeTemp(t, "hello.pal", `
		ldi r0, msg
		ldi r1, 2
		svc 6
		ldi r0, 0
		svc 0
	msg:	.ascii "ok"
	`)
	if err := runPAL([]string{src}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPALFromImage(t *testing.T) {
	dir := t.TempDir()
	src := writeTemp(t, "p.pal", "ldi r0, 0\nsvc 0")
	out := filepath.Join(dir, "p.slb")
	if err := run([]string{"build", src, "-o", out}); err != nil {
		t.Fatal(err)
	}
	if err := runPAL([]string{out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPALWithInput(t *testing.T) {
	src := writeTemp(t, "echo.pal", `
		ldi r0, buf
		ldi r1, 64
		svc 7
		mov r1, r0
		ldi r0, buf
		svc 6
		ldi r0, 0
		svc 0
	buf:	.space 64
	`)
	in := writeTemp(t, "input.txt", "payload")
	if err := runPAL([]string{src, "-in", in}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPALBudgetExhausted(t *testing.T) {
	src := writeTemp(t, "spin.pal", "spin: jmp spin")
	if err := runPAL([]string{src, "-max", "1000"}); err == nil {
		t.Fatal("infinite loop terminated")
	}
}

func TestRunPALFault(t *testing.T) {
	src := writeTemp(t, "crash.pal", "ldi r0, 1\nldi r1, 0\ndivu r0, r1")
	if err := runPAL([]string{src}); err == nil {
		t.Fatal("faulting PAL reported success")
	}
}

func TestRunPALTPMServiceUnavailable(t *testing.T) {
	src := writeTemp(t, "seal.pal", "svc 3")
	if err := runPAL([]string{src}); err == nil {
		t.Fatal("TPM service available on bare rig")
	}
}

func TestRunPALFlagErrors(t *testing.T) {
	src := writeTemp(t, "p.pal", "halt")
	cases := [][]string{
		nil,
		{src, "-in"},
		{src, "-max"},
		{src, "-max", "notanumber"},
		{src, "-bogus"},
		{"/nonexistent.pal"},
		{src, "-in", "/nonexistent.txt"},
	}
	for _, args := range cases {
		if err := runPAL(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunPALTraceDoesNotBreakExecution(t *testing.T) {
	src := writeTemp(t, "t.pal", `
		ldi r0, 0
		ldi r1, 10
	loop:	addi r0, 1
		cmp r0, r1
		jnz loop
		ldi r0, 0
		svc 0
	`)
	if err := runPAL([]string{src, "-trace"}); err != nil {
		t.Fatal(err)
	}
}
