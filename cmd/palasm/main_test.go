package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildDumpHash(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.pal")
	out := filepath.Join(dir, "p.slb")
	if err := os.WriteFile(src, []byte("ldi r0, 7\nhalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", src, "-o", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 12 { // 4 header + 2 instructions
		t.Fatalf("image %d bytes", len(raw))
	}
	if err := run([]string{"dump", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"hash", out}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBadSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.pal")
	os.WriteFile(src, []byte("definitely not assembly"), 0o644)
	if err := run([]string{"build", src}); err == nil {
		t.Fatal("bad source built")
	}
}

func TestDumpBadImage(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "bad.slb")
	os.WriteFile(img, []byte{1}, 0o644)
	if err := run([]string{"dump", img}); err == nil {
		t.Fatal("truncated image dumped")
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{nil, {"build"}, {"bogus", "x"}} {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
	if err := run([]string{"build", "/nonexistent/file.pal"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"hash", "/nonexistent/file.slb"}); err == nil {
		t.Fatal("missing hash target accepted")
	}
}
