// Command palasm assembles PAL source into SLB images and disassembles
// images back to text.
//
// Usage:
//
//	palasm build input.pal -o pal.slb     # assemble to an SLB image
//	palasm dump pal.slb                   # disassemble an image
//	palasm hash pal.slb                   # print the PAL measurement
package main

import (
	"crypto/sha1"
	"fmt"
	"os"

	"minimaltcb/internal/isa"
	"minimaltcb/internal/pal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "palasm: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return usage()
	}
	switch args[0] {
	case "build":
		src, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		out := "pal.slb"
		for i := 2; i < len(args)-1; i++ {
			if args[i] == "-o" {
				out = args[i+1]
			}
		}
		im, err := pal.Build(string(src))
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, im.Bytes, 0o644); err != nil {
			return err
		}
		fmt.Printf("built %s: %d bytes, entry %d, measurement %x\n",
			out, im.Len(), im.Entry, sha1.Sum(im.Bytes))
		return nil

	case "dump":
		raw, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		length, entry, err := pal.ParseHeader(raw)
		if err != nil {
			return err
		}
		fmt.Printf("; SLB length %d, entry %d\n", length, entry)
		fmt.Print(isa.Disassemble(raw[pal.HeaderSize:]))
		return nil

	case "hash":
		raw, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%x  %s\n", sha1.Sum(raw), args[1])
		return nil

	case "run":
		return runPAL(args[1:])
	}
	return usage()
}

func usage() error {
	return fmt.Errorf("usage: palasm build <src> [-o out.slb] | palasm dump <image> | palasm hash <image> | palasm run <src|image> [-in f] [-trace] [-max n]")
}
