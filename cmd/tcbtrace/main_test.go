package main

import (
	"strings"
	"testing"

	"minimaltcb/internal/obs"
)

// span builds a synthetic span record the way the recorder would emit it.
func span(traceID obs.TraceID, id, parent uint64, name string, wallStart, wallDur, virtStart, virtDur int64, attrs ...obs.Attr) obs.Record {
	return obs.Record{
		Kind: obs.KindSpan, Trace: traceID, ID: id, Parent: parent,
		Name: name, Cat: "test",
		WallStart: wallStart, WallDur: wallDur,
		VirtStart: virtStart, VirtDur: virtDur,
		Attrs: attrs,
	}
}

func event(traceID obs.TraceID, name string, wallStart, virtStart int64) obs.Record {
	return obs.Record{
		Kind: obs.KindEvent, Trace: traceID, ID: 0, Parent: 0,
		Name: name, Cat: "test",
		WallStart: wallStart, WallDur: 0,
		VirtStart: virtStart, VirtDur: 0,
	}
}

// jobTrace is a miniature PAL session: a job root holding queue and execute
// stages, a TPM command nested under execute, and a free event.
func jobTrace(lo uint64) []obs.Record {
	id := obs.TraceID{Lo: lo}
	return []obs.Record{
		// Recorder order is end order: children complete before parents.
		span(id, 2, 1, "queue", 1000, 500, -1, -1),
		span(id, 4, 3, "TPM_Quote", 2100, 50, 40, 10),
		span(id, 3, 1, "execute", 2000, 800, 0, 100, obs.Attr{Key: "cpu", Val: "0"}),
		event(id, "sePCR.Free", 2900, 120),
		span(id, 1, 0, "job", 900, 2200, -1, -1, obs.Attr{Key: "name", Val: "hello"}),
	}
}

func renderString(t *testing.T, recs []obs.Record, o renderOpts) string {
	t.Helper()
	var b strings.Builder
	if err := render(&b, recs, o); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRenderTree(t *testing.T) {
	out := renderString(t, jobTrace(7), renderOpts{events: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	want := []string{
		"trace 7: job hello  wall=2.2µs virtual=100ns",
		"  job  wall=2.2µs name=hello",
		"    queue  wall=500ns",
		"    execute  wall=800ns virt=100ns cpu=0",
		"      TPM_Quote  wall=50ns virt=10ns",
		"  • sePCR.Free @virt 120ns",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), out)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestRenderSummaryOnly(t *testing.T) {
	out := renderString(t, jobTrace(3), renderOpts{summaryOnly: true})
	if out != "trace 3: job hello  wall=2.2µs virtual=100ns\n" {
		t.Fatalf("summary output %q", out)
	}
}

func TestRenderEventsSuppressed(t *testing.T) {
	out := renderString(t, jobTrace(1), renderOpts{events: false})
	if strings.Contains(out, "sePCR.Free") {
		t.Fatalf("event rendered with -events=false:\n%s", out)
	}
}

func TestRenderTraceFilter(t *testing.T) {
	recs := append(jobTrace(1), jobTrace(2)...)
	out := renderString(t, recs, renderOpts{only: obs.TraceID{Lo: 2}, events: true})
	if strings.Contains(out, "trace 1:") || !strings.Contains(out, "trace 2:") {
		t.Fatalf("filter output:\n%s", out)
	}
}

func TestRenderMultipleTracesSorted(t *testing.T) {
	recs := append(jobTrace(9), jobTrace(4)...)
	out := renderString(t, recs, renderOpts{summaryOnly: true})
	i4, i9 := strings.Index(out, "trace 4:"), strings.Index(out, "trace 9:")
	if i4 < 0 || i9 < 0 || i4 > i9 {
		t.Fatalf("traces out of order:\n%s", out)
	}
}

// A span whose parent fell out of the ring buffer is promoted to root
// rather than silently dropped.
func TestRenderOrphanPromoted(t *testing.T) {
	recs := []obs.Record{
		span(obs.TraceID{Lo: 5}, 11, 99, "verify", 100, 30, -1, -1), // parent 99 missing
	}
	out := renderString(t, recs, renderOpts{})
	if !strings.Contains(out, "  verify  wall=30ns") {
		t.Fatalf("orphan not rendered at root:\n%s", out)
	}
	if !strings.Contains(out, "trace 5: verify") {
		t.Fatalf("orphan not summarized:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := renderString(t, nil, renderOpts{})
	if !strings.Contains(out, "no records") {
		t.Fatalf("empty output %q", out)
	}
}

// Virtual time must not double-count nested virtual spans: an execute span
// with virt=100ns containing a TPM span with virt=10ns contributes 100ns.
func TestSummaryVirtualNoDoubleCount(t *testing.T) {
	out := renderString(t, jobTrace(8), renderOpts{summaryOnly: true})
	if !strings.Contains(out, "virtual=100ns") {
		t.Fatalf("virtual total wrong:\n%s", out)
	}
}

// TestRenderNameFilter: -name keeps traces whose spans (or their "name"
// attributes — the job root carries the tenant there) match the substring.
func TestRenderNameFilter(t *testing.T) {
	recs := append(jobTrace(1), span(obs.TraceID{Lo: 2}, 1, 0, "job", 900, 100, -1, -1,
		obs.Attr{Key: "name", Val: "loadgen-echo"}))
	recs = append(recs, span(obs.TraceID{Lo: 3}, 1, 0, "TPM_Quote", 100, 50, 0, 10))

	// Attribute match: only the loadgen tenant's trace survives.
	out := renderString(t, recs, renderOpts{name: "loadgen", summaryOnly: true})
	if !strings.Contains(out, "trace 2") || strings.Contains(out, "trace 1") || strings.Contains(out, "trace 3") {
		t.Fatalf("attribute filter wrong:\n%s", out)
	}

	// Span-name match: TPM_Quote appears only in trace 3 as a span name.
	out = renderString(t, recs, renderOpts{name: "TPM_Quote", summaryOnly: true})
	if !strings.Contains(out, "trace 3") || strings.Contains(out, "trace 2") {
		t.Fatalf("span-name filter wrong:\n%s", out)
	}

	// No match renders the empty-trace message, not a crash.
	out = renderString(t, recs, renderOpts{name: "nonesuch"})
	if !strings.Contains(out, "no records") {
		t.Fatalf("no-match output %q", out)
	}
}
