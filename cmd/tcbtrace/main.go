// Command tcbtrace renders a trace dump from the PAL execution stack
// (/debug/trace, or palservd -trace-out with -trace-format jsonl) as a
// human-readable per-session timeline.
//
// Every span in the dump carries two timestamps: wall-clock time (what the
// tenant waited) and virtual sim.Clock time (what the simulated hardware
// charged). The tree view prints both, so the paper's central comparison —
// microseconds of virtual TPM latency buried under milliseconds of real
// queueing and crypto — is visible per job.
//
// Usage:
//
//	tcbtrace [-f dump.jsonl] [-trace N] [-name span] [-events]
//	    Read a JSONL trace dump (stdin by default) and print one tree per
//	    trace, spans nested under their parents, with a wall/virtual
//	    duration breakdown and a per-trace summary line. -trace keeps one
//	    trace by ID; -name keeps traces containing a span (or "name"
//	    attribute) matching the given substring.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"minimaltcb/internal/obs"
)

func main() {
	var (
		file    = flag.String("f", "", "trace dump file in JSONL format (default: stdin)")
		only    = flag.Uint64("trace", 0, "render only this trace ID (0 = all)")
		name    = flag.String("name", "", "render only traces containing a span or \"name\" attribute matching this substring")
		events  = flag.Bool("events", true, "include instant events in the tree")
		summary = flag.Bool("summary", false, "print only the per-trace summary lines")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	recs, err := obs.ReadJSONL(in)
	if err != nil {
		fail(err)
	}
	if err := render(os.Stdout, recs, renderOpts{only: *only, name: *name, events: *events, summaryOnly: *summary}); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tcbtrace: %v\n", err)
	os.Exit(1)
}

type renderOpts struct {
	only        uint64
	name        string
	events      bool
	summaryOnly bool
}

// trace is one reassembled session: its records indexed for tree walking.
type trace struct {
	id       uint64
	recs     []obs.Record
	children map[uint64][]int // parent span ID -> indices into recs
	byID     map[uint64]int
}

// render groups records by trace ID and prints one tree per trace,
// oldest-first.
func render(w io.Writer, recs []obs.Record, o renderOpts) error {
	byTrace := map[uint64]*trace{}
	var order []uint64
	for i, r := range recs {
		if o.only != 0 && r.Trace != o.only {
			continue
		}
		t := byTrace[r.Trace]
		if t == nil {
			t = &trace{id: r.Trace, children: map[uint64][]int{}, byID: map[uint64]int{}}
			byTrace[r.Trace] = t
			order = append(order, r.Trace)
		}
		t.recs = append(t.recs, recs[i])
	}
	if o.name != "" {
		kept := order[:0]
		for _, id := range order {
			if byTrace[id].matches(o.name) {
				kept = append(kept, id)
			}
		}
		order = kept
	}
	if len(order) == 0 {
		_, err := fmt.Fprintln(w, "tcbtrace: no records")
		return err
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		if err := byTrace[id].render(w, o); err != nil {
			return err
		}
	}
	return nil
}

// matches reports whether any record in the trace carries name as a
// substring of its span/event name or of a "name" attribute (the root
// span's job name), so -name loadgen-echo finds a tenant's traces.
func (t *trace) matches(name string) bool {
	for _, r := range t.recs {
		if strings.Contains(r.Name, name) {
			return true
		}
		for _, a := range r.Attrs {
			if a.Key == "name" && strings.Contains(a.Val, name) {
				return true
			}
		}
	}
	return false
}

func (t *trace) index() {
	// Chronological order inside each sibling list; the recorder appends
	// spans at End, so raw order is end-time order, not start order.
	sort.SliceStable(t.recs, func(i, j int) bool { return t.recs[i].WallStart < t.recs[j].WallStart })
	for i, r := range t.recs {
		if r.Kind == obs.KindSpan {
			t.byID[r.ID] = i
		}
	}
	for i, r := range t.recs {
		parent := r.Parent
		if _, ok := t.byID[parent]; !ok {
			parent = 0 // orphan (parent overwritten by the ring): promote to root
		}
		t.children[parent] = append(t.children[parent], i)
	}
}

// summarize totals the trace's two clocks: wall time from the root spans,
// virtual time summed over spans that carry it (nested virtual spans are
// skipped so TPM commands inside an execute span are not double-counted).
func (t *trace) summarize() (name string, wall, virt time.Duration) {
	for _, i := range t.children[0] {
		r := t.recs[i]
		if r.Kind != obs.KindSpan {
			continue
		}
		wall += time.Duration(r.WallDur)
		if name == "" {
			name = r.Name
			for _, a := range r.Attrs {
				if a.Key == "name" {
					name = r.Name + " " + a.Val
				}
			}
		}
	}
	virt = t.virtUnder(0)
	return name, wall, virt
}

// virtUnder sums virtual durations of the shallowest virtual spans under
// parent.
func (t *trace) virtUnder(parent uint64) time.Duration {
	var sum time.Duration
	for _, i := range t.children[parent] {
		r := t.recs[i]
		if r.Kind != obs.KindSpan {
			continue
		}
		if r.VirtDur >= 0 {
			sum += time.Duration(r.VirtDur)
			continue
		}
		sum += t.virtUnder(r.ID)
	}
	return sum
}

func (t *trace) render(w io.Writer, o renderOpts) error {
	t.index()
	name, wall, virt := t.summarize()
	if _, err := fmt.Fprintf(w, "trace %d: %s  wall=%v virtual=%v\n",
		t.id, name, wall, virt); err != nil {
		return err
	}
	if o.summaryOnly {
		return nil
	}
	return t.renderChildren(w, 0, 1, o)
}

func (t *trace) renderChildren(w io.Writer, parent uint64, depth int, o renderOpts) error {
	for _, i := range t.children[parent] {
		r := t.recs[i]
		if r.Kind == obs.KindEvent && !o.events {
			continue
		}
		if err := t.renderLine(w, r, depth); err != nil {
			return err
		}
		if r.Kind == obs.KindSpan {
			if err := t.renderChildren(w, r.ID, depth+1, o); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *trace) renderLine(w io.Writer, r obs.Record, depth int) error {
	indent := strings.Repeat("  ", depth)
	var b strings.Builder
	b.WriteString(indent)
	if r.Kind == obs.KindEvent {
		b.WriteString("• ")
		b.WriteString(r.Name)
		if r.VirtStart >= 0 {
			fmt.Fprintf(&b, " @virt %v", time.Duration(r.VirtStart))
		}
	} else {
		b.WriteString(r.Name)
		fmt.Fprintf(&b, "  wall=%v", time.Duration(r.WallDur))
		if r.VirtDur >= 0 {
			fmt.Fprintf(&b, " virt=%v", time.Duration(r.VirtDur))
		}
	}
	for _, a := range r.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
	}
	_, err := fmt.Fprintln(w, b.String())
	return err
}
