// Command tcbtrace renders a trace dump from the PAL execution stack
// (/debug/trace, or palservd -trace-out with -trace-format jsonl) as a
// human-readable per-session timeline.
//
// Every span in the dump carries two timestamps: wall-clock time (what the
// tenant waited) and virtual sim.Clock time (what the simulated hardware
// charged). The tree view prints both, so the paper's central comparison —
// microseconds of virtual TPM latency buried under milliseconds of real
// queueing and crypto — is visible per job.
//
// Usage:
//
//	tcbtrace [-f dump.jsonl] [-trace ID] [-name span] [-events]
//	    Read a JSONL trace dump (stdin by default) and print one tree per
//	    trace, spans nested under their parents, with a wall/virtual
//	    duration breakdown and a per-trace summary line. -trace keeps one
//	    trace by ID (decimal or 32-hex-digit cluster form); -name keeps
//	    traces containing a span (or "name" attribute) matching the given
//	    substring.
//
//	tcbtrace -stitch host1:7080,host2:7080 [-trace ID] [-chrome out.json]
//	    Fetch the live span rings of the listed palservd/palrouter
//	    processes over the wire protocol's trace op and merge them into
//	    one timeline: each node's wall clock is aligned to this process
//	    using the RTT midpoint of the fetch, records are tagged with the
//	    node they came from, and the result renders as one tree (or, with
//	    -chrome, as a Chrome trace with one lane pair per node). Pointing
//	    -stitch at a palrouter stitches the whole fleet in one hop — the
//	    router fans the fetch out to its backends itself.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/palsvc"
)

func main() {
	var (
		file    = flag.String("f", "", "trace dump file in JSONL format (default: stdin)")
		only    = flag.String("trace", "", "render only this trace ID, decimal or 32-hex cluster form (\"\" = all)")
		name    = flag.String("name", "", "render only traces containing a span or \"name\" attribute matching this substring")
		events  = flag.Bool("events", true, "include instant events in the tree")
		summary = flag.Bool("summary", false, "print only the per-trace summary lines")
		stitch  = flag.String("stitch", "", "comma-separated wire addresses whose span rings to fetch and merge (skew-corrected)")
		chrome  = flag.String("chrome", "", "write the (stitched) records as a Chrome trace to this file instead of rendering a tree")
	)
	flag.Parse()

	var filter obs.TraceID
	if *only != "" {
		id, err := obs.ParseTraceID(*only)
		if err != nil {
			fail(err)
		}
		filter = id
	}

	var recs []obs.Record
	if *stitch != "" {
		var err error
		recs, err = fetchStitched(*stitch, *only)
		if err != nil {
			fail(err)
		}
	} else {
		in := io.Reader(os.Stdin)
		if *file != "" {
			f, err := os.Open(*file)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			in = f
		}
		var err error
		recs, err = obs.ReadJSONL(in)
		if err != nil {
			fail(err)
		}
	}

	if *chrome != "" {
		if !filter.IsZero() {
			recs = obs.FilterTrace(recs, filter)
		}
		f, err := os.Create(*chrome)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteChromeTrace(f, recs); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("tcbtrace: wrote %d record(s) to %s\n", len(recs), *chrome)
		return
	}

	if err := render(os.Stdout, recs, renderOpts{only: filter, name: *name, events: *events, summaryOnly: *summary}); err != nil {
		fail(err)
	}
}

// fetchStitched pulls each node's ring over the trace wire op and merges
// them with per-node skew correction. A node that does not speak the trace
// op (an old build) is reported and skipped rather than failing the whole
// stitch.
func fetchStitched(addrs, filter string) ([]obs.Record, error) {
	var dumps []obs.NodeDump
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		c, err := palsvc.Dial(addr, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", addr, err)
		}
		dump, offset, err := c.Trace(filter)
		_ = c.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbtrace: %s: %v (skipped)\n", addr, err)
			continue
		}
		if dump.Truncated > 0 {
			fmt.Fprintf(os.Stderr, "tcbtrace: %s: dump truncated, %d record(s) omitted\n", addr, dump.Truncated)
		}
		dumps = append(dumps, obs.NodeDump{Node: addr, Records: dump.Records, Dropped: dump.Dropped, Offset: offset})
	}
	if len(dumps) == 0 {
		return nil, fmt.Errorf("no node answered the trace op")
	}
	return obs.Stitch(dumps), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tcbtrace: %v\n", err)
	os.Exit(1)
}

type renderOpts struct {
	only        obs.TraceID
	name        string
	events      bool
	summaryOnly bool
}

// trace is one reassembled session: its records indexed for tree walking.
type trace struct {
	id       obs.TraceID
	recs     []obs.Record
	children map[uint64][]int // parent span ID -> indices into recs
	byID     map[uint64]int
}

// render groups records by trace ID and prints one tree per trace,
// oldest-first.
func render(w io.Writer, recs []obs.Record, o renderOpts) error {
	byTrace := map[obs.TraceID]*trace{}
	var order []obs.TraceID
	for i, r := range recs {
		if !o.only.IsZero() && r.Trace != o.only {
			continue
		}
		t := byTrace[r.Trace]
		if t == nil {
			t = &trace{id: r.Trace, children: map[uint64][]int{}, byID: map[uint64]int{}}
			byTrace[r.Trace] = t
			order = append(order, r.Trace)
		}
		t.recs = append(t.recs, recs[i])
	}
	if o.name != "" {
		kept := order[:0]
		for _, id := range order {
			if byTrace[id].matches(o.name) {
				kept = append(kept, id)
			}
		}
		order = kept
	}
	if len(order) == 0 {
		_, err := fmt.Fprintln(w, "tcbtrace: no records")
		return err
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Hi != order[j].Hi {
			return order[i].Hi < order[j].Hi
		}
		return order[i].Lo < order[j].Lo
	})
	for _, id := range order {
		if err := byTrace[id].render(w, o); err != nil {
			return err
		}
	}
	return nil
}

// matches reports whether any record in the trace carries name as a
// substring of its span/event name or of a "name" attribute (the root
// span's job name), so -name loadgen-echo finds a tenant's traces.
func (t *trace) matches(name string) bool {
	for _, r := range t.recs {
		if strings.Contains(r.Name, name) {
			return true
		}
		for _, a := range r.Attrs {
			if a.Key == "name" && strings.Contains(a.Val, name) {
				return true
			}
		}
	}
	return false
}

func (t *trace) index() {
	// Chronological order inside each sibling list; the recorder appends
	// spans at End, so raw order is end-time order, not start order.
	sort.SliceStable(t.recs, func(i, j int) bool { return t.recs[i].WallStart < t.recs[j].WallStart })
	for i, r := range t.recs {
		if r.Kind == obs.KindSpan {
			t.byID[r.ID] = i
		}
	}
	for i, r := range t.recs {
		parent := r.Parent
		if _, ok := t.byID[parent]; !ok {
			parent = 0 // orphan (parent overwritten by the ring): promote to root
		}
		t.children[parent] = append(t.children[parent], i)
	}
}

// summarize totals the trace's two clocks: wall time from the root spans,
// virtual time summed over spans that carry it (nested virtual spans are
// skipped so TPM commands inside an execute span are not double-counted).
func (t *trace) summarize() (name string, wall, virt time.Duration) {
	for _, i := range t.children[0] {
		r := t.recs[i]
		if r.Kind != obs.KindSpan {
			continue
		}
		wall += time.Duration(r.WallDur)
		if name == "" {
			name = r.Name
			for _, a := range r.Attrs {
				if a.Key == "name" {
					name = r.Name + " " + a.Val
				}
			}
		}
	}
	virt = t.virtUnder(0)
	return name, wall, virt
}

// virtUnder sums virtual durations of the shallowest virtual spans under
// parent.
func (t *trace) virtUnder(parent uint64) time.Duration {
	var sum time.Duration
	for _, i := range t.children[parent] {
		r := t.recs[i]
		if r.Kind != obs.KindSpan {
			continue
		}
		if r.VirtDur >= 0 {
			sum += time.Duration(r.VirtDur)
			continue
		}
		sum += t.virtUnder(r.ID)
	}
	return sum
}

func (t *trace) render(w io.Writer, o renderOpts) error {
	t.index()
	name, wall, virt := t.summarize()
	if _, err := fmt.Fprintf(w, "trace %s: %s  wall=%v virtual=%v\n",
		t.id, name, wall, virt); err != nil {
		return err
	}
	if o.summaryOnly {
		return nil
	}
	return t.renderChildren(w, 0, 1, o)
}

func (t *trace) renderChildren(w io.Writer, parent uint64, depth int, o renderOpts) error {
	for _, i := range t.children[parent] {
		r := t.recs[i]
		if r.Kind == obs.KindEvent && !o.events {
			continue
		}
		if err := t.renderLine(w, r, depth); err != nil {
			return err
		}
		if r.Kind == obs.KindSpan {
			if err := t.renderChildren(w, r.ID, depth+1, o); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *trace) renderLine(w io.Writer, r obs.Record, depth int) error {
	indent := strings.Repeat("  ", depth)
	var b strings.Builder
	b.WriteString(indent)
	if r.Kind == obs.KindEvent {
		b.WriteString("• ")
		b.WriteString(r.Name)
		if r.VirtStart >= 0 {
			fmt.Fprintf(&b, " @virt %v", time.Duration(r.VirtStart))
		}
	} else {
		b.WriteString(r.Name)
		fmt.Fprintf(&b, "  wall=%v", time.Duration(r.WallDur))
		if r.VirtDur >= 0 {
			fmt.Fprintf(&b, " virt=%v", time.Duration(r.VirtDur))
		}
	}
	if r.Node != "" {
		fmt.Fprintf(&b, " [%s]", r.Node)
	}
	for _, a := range r.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
	}
	_, err := fmt.Fprintln(w, b.String())
	return err
}
