package main

import "testing"

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"t60", "broadcom", "infineon", "tep", "BROADCOM"} {
		p, err := profileByName(name)
		if err != nil || p.Name == "" {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := profileByName("tis"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRunProfiles(t *testing.T) {
	if err := run("broadcom", 1, []string{"profiles"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoAllChips(t *testing.T) {
	for _, chip := range []string{"t60", "broadcom", "infineon", "tep"} {
		if err := run(chip, 1, []string{"demo"}); err != nil {
			t.Fatalf("%s: %v", chip, err)
		}
	}
}

func TestRunBench(t *testing.T) {
	if err := run("broadcom", 1, []string{"bench"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("broadcom", 1, nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run("broadcom", 1, []string{"explode"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run("martian", 1, []string{"demo"}); err == nil {
		t.Fatal("unknown chip accepted")
	}
}
