// Command tpmtool exercises the software TPM interactively: run single
// operations against any of the four measured chip profiles, inspect
// modeled latencies, or benchmark all four (Figure 3's data in raw form).
//
// Usage:
//
//	tpmtool profiles                 # list the vendor timing profiles
//	tpmtool bench                    # Figure 3 microbenchmarks
//	tpmtool demo                     # seal/unseal + quote round trip
//	tpmtool -tpm infineon demo       # pick a chip profile
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"minimaltcb/internal/experiments"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

func main() {
	chipName := flag.String("tpm", "broadcom", "chip profile: t60 | broadcom | infineon | tep")
	trials := flag.Int("trials", 20, "benchmark trials")
	flag.Parse()
	if err := run(*chipName, *trials, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "tpmtool: %v\n", err)
		os.Exit(1)
	}
}

func profileByName(name string) (tpm.Profile, error) {
	switch strings.ToLower(name) {
	case "t60":
		return tpm.ProfileAtmelT60(), nil
	case "broadcom":
		return tpm.ProfileBroadcom(), nil
	case "infineon":
		return tpm.ProfileInfineon(), nil
	case "tep":
		return tpm.ProfileAtmelTEP(), nil
	}
	return tpm.Profile{}, fmt.Errorf("unknown TPM %q (want t60|broadcom|infineon|tep)", name)
}

func run(chipName string, trials int, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tpmtool [flags] profiles|bench|demo")
	}
	switch args[0] {
	case "profiles":
		fmt.Printf("%-28s %10s %10s %10s %10s %12s\n",
			"TPM", "Extend", "Seal(1K)", "Quote", "Unseal", "GetRand128")
		for _, p := range tpm.Profiles() {
			fmt.Printf("%-28s %8.2fms %8.2fms %8.2fms %8.2fms %10.2fms\n",
				p.Name,
				msf(p.ExtendLatency), msf(p.SealLatency(tpm.SealGenPayload)),
				msf(p.QuoteLatency), msf(p.UnsealLatency), msf(p.RandomLatency(128)))
		}
		return nil

	case "bench":
		rows, err := experiments.Figure3(experiments.Config{Trials: trials, KeyBits: 1024, Seed: 42})
		if err != nil {
			return err
		}
		experiments.RenderFigure3(os.Stdout, rows)
		return nil

	case "demo":
		p, err := profileByName(chipName)
		if err != nil {
			return err
		}
		clock := sim.NewClock()
		bus := lpc.NewBus(clock, lpc.LongWait())
		chip, err := tpm.New(clock, bus, tpm.Config{Profile: p, KeyBits: 1024, Seed: 7})
		if err != nil {
			return err
		}
		fmt.Printf("chip: %s\n", p.Name)

		// Late-launch a pretend PAL.
		bus.SetLocality(4)
		chip.HashStart()
		chip.HashData([]byte("demo PAL image"))
		pcr17, _ := chip.HashEnd()
		bus.SetLocality(0)
		fmt.Printf("late launch: PCR17 = %x\n", pcr17)

		secret := []byte("attested secret")
		t0 := clock.Now()
		blob, err := chip.Seal(tpm.Selection{17}, secret)
		if err != nil {
			return err
		}
		fmt.Printf("seal:   %4d-byte blob in %v\n", len(blob), clock.Now()-t0)

		t0 = clock.Now()
		got, err := chip.Unseal(blob)
		if err != nil {
			return err
		}
		fmt.Printf("unseal: %q in %v\n", got, clock.Now()-t0)

		t0 = clock.Now()
		q, err := chip.QuoteCommand(tpm.Selection{17}, []byte("tpmtool nonce"))
		if err != nil {
			return err
		}
		fmt.Printf("quote:  %d-byte signature in %v\n", len(q.Signature), clock.Now()-t0)
		if err := tpm.VerifyQuote(chip.AIKPublic(), q); err != nil {
			return fmt.Errorf("quote verification failed: %w", err)
		}
		fmt.Println("quote verifies against the AIK")
		fmt.Printf("total virtual time: %v\n", clock.Now())
		return nil
	}
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func msf(d interface{ Nanoseconds() int64 }) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
