# Tier-1 verification lives here: `make check` is what CI and the roadmap
# run. The race pass covers the packages with real concurrency — the PAL
# service and the remote-attestation protocol.

GO ?= go

.PHONY: check build vet test race bench

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/palsvc ./internal/attest ./internal/obs \
		./cmd/palservd ./cmd/attestd

# bench commits a machine-readable artifact so later sessions can diff
# against this PR's numbers. -benchtime keeps the run short but real.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 100x -benchmem . ./internal/obs ./internal/palsvc \
		| $(GO) run ./cmd/benchjson -o BENCH_PR2.json
