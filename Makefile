# Tier-1 verification lives here: `make check` is what CI and the roadmap
# run. The race pass covers the packages with real concurrency — the PAL
# service and the remote-attestation protocol.

GO ?= go

.PHONY: check build vet test race bench

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/palsvc ./internal/attest

bench:
	$(GO) test -bench . -benchtime 1x .
