# Tier-1 verification lives here: `make check` is what CI and the roadmap
# run. The race pass covers the packages with real concurrency — the PAL
# service and the remote-attestation protocol — plus the memory and CPU
# cores, whose decode/measurement caches are shared across goroutines, the
# profiler, whose aggregation root is shared across machines, and the chaos
# injector, whose decision streams are drawn from every worker at once.

GO ?= go

.PHONY: check build vet test race bench benchcmp soak soak-short cluster-soak audit-verify

check: build vet test race benchcmp audit-verify soak-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/palsvc ./internal/cluster ./internal/attest \
		./internal/obs ./internal/obs/prof ./internal/cpu ./internal/mem \
		./internal/chaos ./internal/sksm ./internal/audit \
		./cmd/palservd ./cmd/attestd

# soak drives the fault-injected zero-loss/zero-leak acceptance run (see
# docs/RESILIENCE.md): a multi-replica service under the "soak" profile over
# real TCP, asserting the terminal counters partition every submitted job,
# LeakCheck comes back clean, and every injected PAL fault produced exactly
# one crash bundle. Override the knobs per run, e.g.:
#   make soak CHAOS_SOAK_PROFILE=heavy CHAOS_SOAK_SEED=42
CHAOS_SOAK_PROFILE ?= soak
CHAOS_SOAK_SEED ?= 1
soak:
	CHAOS_SOAK_PROFILE=$(CHAOS_SOAK_PROFILE) CHAOS_SOAK_DURATION=6s \
		CHAOS_SOAK_SEED=$(CHAOS_SOAK_SEED) \
		$(GO) test -v -count 1 -run TestSoakZeroLossUnderChaos ./internal/palsvc

# soak-short is the check-gate version: same assertions, shorter load.
soak-short:
	CHAOS_SOAK_PROFILE=$(CHAOS_SOAK_PROFILE) CHAOS_SOAK_DURATION=1200ms \
		CHAOS_SOAK_SEED=$(CHAOS_SOAK_SEED) \
		$(GO) test -count 1 -run TestSoakZeroLossUnderChaos ./internal/palsvc

# cluster-soak is the fleet-level acceptance run (see docs/CLUSTER.md): a
# palrouter-shaped Router over three chaos-injected backends under
# multi-tenant load, with one backend's network killed mid-run. It asserts
# tenants saw zero transport errors, every node's terminal counters still
# partition its submissions, the victim was drained from the ring, and no
# backend leaked. Same knob style as soak:
#   make cluster-soak CLUSTER_SOAK_PROFILE=heavy CLUSTER_SOAK_SEED=42
CLUSTER_SOAK_PROFILE ?= soak
CLUSTER_SOAK_SEED ?= 1
cluster-soak:
	CLUSTER_SOAK_PROFILE=$(CLUSTER_SOAK_PROFILE) CLUSTER_SOAK_DURATION=6s \
		CLUSTER_SOAK_SEED=$(CLUSTER_SOAK_SEED) \
		$(GO) test -v -count 1 -run TestClusterFailoverSoak ./internal/cluster

# audit-verify exercises the tamper-evident log end to end (see
# docs/AUDIT.md): the persistence/recovery/tamper matrix in
# internal/audit, the demo cross-check that verifies both attestd-side
# logs offline, and tcbaudit's offline -verify path — inclusion plus
# cross-restart consistency proofs replayed with no daemon running.
audit-verify:
	$(GO) test -count 1 ./internal/audit
	$(GO) test -count 1 -run 'TestDemoAuditCrossCheck' ./cmd/attestd
	$(GO) test -count 1 -run 'TestOfflineQueryAndVerify|TestVerifyDetectsTamper' ./cmd/tcbaudit

# bench commits a machine-readable artifact so later sessions can diff
# against this PR's numbers. Time-based -benchtime lets go test pick the
# iteration count per benchmark: fixed 100x gave microsecond-scale
# benchmarks ±2x run-to-run noise, which tripped the benchcmp gate on
# machine weather rather than real regressions.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 0.5s -benchmem . ./internal/obs ./internal/palsvc ./internal/audit \
		| $(GO) run ./cmd/benchjson -o BENCH_PR10.json

# benchcmp gates the committed artifacts: the batched quote pipeline must
# only ever move the attested-job numbers down, and the zero-allocation
# fast paths of earlier PRs must survive with batching both on and off.
# Thresholds live in cmd/benchjson (-max-ns-regress 50%,
# -max-alloc-regress 25% by default); nothing reruns benchmarks here.
benchcmp:
	$(GO) run ./cmd/benchjson -compare BENCH_PR9.json BENCH_PR10.json
