# Tier-1 verification lives here: `make check` is what CI and the roadmap
# run. The race pass covers the packages with real concurrency — the PAL
# service and the remote-attestation protocol — plus the memory and CPU
# cores, whose decode/measurement caches are shared across goroutines, and
# the profiler, whose aggregation root is shared across machines.

GO ?= go

.PHONY: check build vet test race bench benchcmp

check: build vet test race benchcmp

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/palsvc ./internal/attest ./internal/obs \
		./internal/obs/prof ./internal/cpu ./internal/mem \
		./cmd/palservd ./cmd/attestd

# bench commits a machine-readable artifact so later sessions can diff
# against this PR's numbers. -benchtime keeps the run short but real.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 100x -benchmem . ./internal/obs ./internal/palsvc \
		| $(GO) run ./cmd/benchjson -o BENCH_PR4.json

# benchcmp gates the committed artifacts: the profiler-off path must not
# give the fast-path PR's wins back. Thresholds live in cmd/benchjson
# (-max-ns-regress 50%, -max-alloc-regress 25% by default); nothing reruns
# benchmarks here.
benchcmp:
	$(GO) run ./cmd/benchjson -compare BENCH_PR3.json BENCH_PR4.json
