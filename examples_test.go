package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end via `go run`
// and checks for its success markers, so the documentation-facing demos
// cannot rot silently. These are the slowest tests in the module (each
// builds a binary and runs real RSA), so they share a single -run target.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; skipped with -short")
	}
	cases := map[string][]string{
		"./examples/quickstart": {
			"hello from a minimal TCB PAL",
			"attested as \"quickstart\"",
			"via sePCR quote",
		},
		"./examples/certauthority": {
			"CA key generated and sealed",
			"attestation verified",
			"rogue PAL could not unseal",
		},
		"./examples/rootkit": {
			"kernel clean",
			"rootkit detected",
			"forged 'clean' log rejected",
		},
		"./examples/factoring": {
			"factor 4999 found",
			"speedup",
		},
		"./examples/sshpass": {
			"allow=true",
			"allow=false",
			"rogue PAL could not unseal",
		},
		"./examples/multicore": {
			"joined via the memory controller",
			"refused by the access-control table",
			"two-core checksum",
			"sePCR quote generated",
		},
		"./examples/trustedinput": {
			"PIN sealed to the pad's identity",
			"entry 3-1-4-1 via interrupts: accept=true",
			"entry 2-7-2-7 via interrupts: accept=false",
		},
		"./examples/distributed": {
			"found=true div=5087",
			"attested ✓",
			"forged result REJECTED",
		},
	}
	for pkg, markers := range cases {
		pkg, markers := pkg, markers
		t.Run(strings.TrimPrefix(pkg, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", pkg, err, out)
			}
			for _, m := range markers {
				if !strings.Contains(string(out), m) {
					t.Errorf("%s output missing %q:\n%s", pkg, m, out)
				}
			}
		})
	}
}
