// Package-level benchmarks: one testing.B benchmark per table and figure
// of the paper, plus the ablations DESIGN.md calls out. Each benchmark
// drives the full simulator (late launch microcode, software TPM, memory
// controller) and reports the key *virtual-time* result as a custom metric
// alongside the usual wall-clock ns/op of the simulation itself.
//
// The authoritative regeneration of the paper's numbers is cmd/seabench;
// these benchmarks exist so `go test -bench` exercises every experiment
// code path and tracks simulator performance.
package main

import (
	"testing"
	"time"

	"minimaltcb/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Trials: 1, KeyBits: 1024, Seed: 42}
}

func msMetric(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkTable1_LateLaunch regenerates Table 1 (SKINIT/SENTER vs PAL
// size on all three machines) once per iteration.
func BenchmarkTable1_LateLaunch(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(msMetric(rows[0].Avg[64<<10]), "vms_skinit64KB")
	b.ReportMetric(msMetric(rows[2].Avg[64<<10]), "vms_senter64KB")
}

// BenchmarkFigure2_PALGen regenerates Figure 2's PAL Gen bar.
func BenchmarkFigure2_PALGen(b *testing.B) {
	var bars []experiments.Figure2Bar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = experiments.Figure2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(msMetric(bars[0].Total), "vms_palgen")
	b.ReportMetric(msMetric(bars[2].Total), "vms_paluse")
}

// BenchmarkFigure3_TPMOps regenerates Figure 3 (TPM microbenchmarks on
// all four chips).
func BenchmarkFigure3_TPMOps(b *testing.B) {
	var rows []experiments.Figure3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.TPM == "Broadcom (HP dc5750)" {
			b.ReportMetric(msMetric(r.Cells["Unseal"].Mean), "vms_broadcom_unseal")
		}
	}
}

// BenchmarkTable2_VMSwitch regenerates Table 2 (VM entry/exit).
func BenchmarkTable2_VMSwitch(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].EnterAvg.Nanoseconds()), "vns_amd_vmenter")
	b.ReportMetric(float64(rows[1].EnterAvg.Nanoseconds()), "vns_intel_vmenter")
}

// BenchmarkImpact_ContextSwitch regenerates §5.7's comparison and reports
// the measured improvement in orders of magnitude.
func BenchmarkImpact_ContextSwitch(b *testing.B) {
	var r *experiments.ImpactResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Impact(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OrdersOfMagnitude, "orders_of_magnitude")
	b.ReportMetric(msMetric(r.LegacyRoundTrip), "vms_legacy_switch")
}

// BenchmarkConcurrency_LegacyShare regenerates the concurrency sweep at
// one PAL count.
func BenchmarkConcurrency_LegacyShare(b *testing.B) {
	var pts []experiments.ConcurrencyPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Concurrency(benchCfg(), []int{2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].LegacyShareSEA, "legacy_share_sea")
	b.ReportMetric(pts[0].LegacyShareRec, "legacy_share_rec")
}

// BenchmarkAblation_HashLocation sweeps the AMD/Intel crossover.
func BenchmarkAblation_HashLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHashLocation(benchCfg(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_TPMWait contrasts the wait-stating and full-speed TPM.
func BenchmarkAblation_TPMWait(b *testing.B) {
	var r *experiments.TPMWaitResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationTPMWait(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Factor, "wait_factor")
}

// BenchmarkAblation_SePCRCount measures admission under register pressure.
func BenchmarkAblation_SePCRCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSePCRCount(benchCfg(), 8, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Quantum sweeps the preemption timer.
func BenchmarkAblation_Quantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationQuantum(benchCfg(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_SealPayload sweeps TPM_Seal payload sizes.
func BenchmarkAblation_SealPayload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSealPayload(benchCfg(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_TwoStageAMD measures footnote 4's two-stage launch.
func BenchmarkAblation_TwoStageAMD(b *testing.B) {
	var pts []experiments.TwoStagePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.AblationTwoStageAMD(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(float64(last.SingleStage)/float64(last.TwoStage), "speedup_64KB")
}

// BenchmarkAblation_CrossPlatform measures Figure 2 on all four TPMs.
func BenchmarkAblation_CrossPlatform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFigure2CrossPlatform(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}
