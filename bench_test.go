// Package-level benchmarks: one testing.B benchmark per table and figure
// of the paper, plus the ablations DESIGN.md calls out. Each benchmark
// drives the full simulator (late launch microcode, software TPM, memory
// controller) and reports the key *virtual-time* result as a custom metric
// alongside the usual wall-clock ns/op of the simulation itself.
//
// The authoritative regeneration of the paper's numbers is cmd/seabench;
// these benchmarks exist so `go test -bench` exercises every experiment
// code path and tracks simulator performance.
package main

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/experiments"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/palsvc"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

func benchCfg() experiments.Config {
	return experiments.Config{Trials: 1, KeyBits: 1024, Seed: 42}
}

func msMetric(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkTable1_LateLaunch regenerates Table 1 (SKINIT/SENTER vs PAL
// size on all three machines) once per iteration.
func BenchmarkTable1_LateLaunch(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(msMetric(rows[0].Avg[64<<10]), "vms_skinit64KB")
	b.ReportMetric(msMetric(rows[2].Avg[64<<10]), "vms_senter64KB")
}

// BenchmarkFigure2_PALGen regenerates Figure 2's PAL Gen bar.
func BenchmarkFigure2_PALGen(b *testing.B) {
	var bars []experiments.Figure2Bar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = experiments.Figure2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(msMetric(bars[0].Total), "vms_palgen")
	b.ReportMetric(msMetric(bars[2].Total), "vms_paluse")
}

// BenchmarkFigure3_TPMOps regenerates Figure 3 (TPM microbenchmarks on
// all four chips).
func BenchmarkFigure3_TPMOps(b *testing.B) {
	var rows []experiments.Figure3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.TPM == "Broadcom (HP dc5750)" {
			b.ReportMetric(msMetric(r.Cells["Unseal"].Mean), "vms_broadcom_unseal")
		}
	}
}

// BenchmarkTable2_VMSwitch regenerates Table 2 (VM entry/exit).
func BenchmarkTable2_VMSwitch(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].EnterAvg.Nanoseconds()), "vns_amd_vmenter")
	b.ReportMetric(float64(rows[1].EnterAvg.Nanoseconds()), "vns_intel_vmenter")
}

// BenchmarkImpact_ContextSwitch regenerates §5.7's comparison and reports
// the measured improvement in orders of magnitude.
func BenchmarkImpact_ContextSwitch(b *testing.B) {
	var r *experiments.ImpactResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Impact(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OrdersOfMagnitude, "orders_of_magnitude")
	b.ReportMetric(msMetric(r.LegacyRoundTrip), "vms_legacy_switch")
}

// BenchmarkConcurrency_LegacyShare regenerates the concurrency sweep at
// one PAL count.
func BenchmarkConcurrency_LegacyShare(b *testing.B) {
	var pts []experiments.ConcurrencyPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Concurrency(benchCfg(), []int{2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].LegacyShareSEA, "legacy_share_sea")
	b.ReportMetric(pts[0].LegacyShareRec, "legacy_share_rec")
}

// BenchmarkAblation_HashLocation sweeps the AMD/Intel crossover.
func BenchmarkAblation_HashLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHashLocation(benchCfg(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_TPMWait contrasts the wait-stating and full-speed TPM.
func BenchmarkAblation_TPMWait(b *testing.B) {
	var r *experiments.TPMWaitResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationTPMWait(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Factor, "wait_factor")
}

// BenchmarkAblation_SePCRCount measures admission under register pressure.
func BenchmarkAblation_SePCRCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSePCRCount(benchCfg(), 8, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Quantum sweeps the preemption timer.
func BenchmarkAblation_Quantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationQuantum(benchCfg(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_SealPayload sweeps TPM_Seal payload sizes.
func BenchmarkAblation_SealPayload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSealPayload(benchCfg(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_TwoStageAMD measures footnote 4's two-stage launch.
func BenchmarkAblation_TwoStageAMD(b *testing.B) {
	var pts []experiments.TwoStagePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.AblationTwoStageAMD(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(float64(last.SingleStage)/float64(last.TwoStage), "speedup_64KB")
}

// BenchmarkAblation_CrossPlatform measures Figure 2 on all four TPMs.
func BenchmarkAblation_CrossPlatform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFigure2CrossPlatform(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExec measures raw PAL execution on one core: a compute loop run to
// completion per iteration, with the threaded-code tier on or off. The pair
// is the direct interpreter-vs-compiled comparison; everything above it
// (Table1, Impact, Service_*) measures the tier folded into full workloads.
func benchExec(b *testing.B, compile bool) {
	b.Helper()
	// The hot block is store-free: a store would dirty the block's own
	// page every iteration (code and data share this small image), which
	// the tier correctly answers by poisoning the block — that bailout
	// path has its own differential tests, but it is not the steady state
	// this benchmark is after.
	image := pal.MustBuild(`
		ldi	r1, acc
		ldi	r0, 0
		ldi	r3, 400
	loop:	addi	r0, 1
		load	r2, [r1]
		add	r2, r0
		xor	r4, r2
		add	r2, r2
		cmp	r0, r3
		jnz	loop
		store	r2, [r1]
		halt
	acc:	.word 0
	stack:	.space 64
	`)
	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	c := cpu.New(0, cpu.ParamsAMDdc5750(), cs)
	if err := cs.Memory().WriteRaw(0x4000, image.Bytes); err != nil {
		b.Fatal(err)
	}
	c.Reset()
	c.SetBlockCompile(compile)
	region := mem.Region{Base: 0x4000, Size: image.Len()}
	run := func() {
		c.EnterRegion(region, image.Entry)
		if reason, err := c.Run(0); err != nil || reason != cpu.StopHalt {
			b.Fatalf("run stopped %v: %v", reason, err)
		}
	}
	// Warm until every leader is past the heat threshold and compiled, so
	// the timed loop measures the steady state of the chosen tier.
	for i := 0; i < 32; i++ {
		run()
	}
	start := c.Retired
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	instrs := c.Retired - start
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
	if st := c.TCodeStatsSnapshot(); compile && st.Execs == 0 {
		b.Fatal("compiled benchmark never executed a compiled block")
	} else if !compile && st.Execs != 0 {
		b.Fatal("interpreter benchmark executed compiled blocks")
	}
}

// BenchmarkExec_Interpreter is the pure-interpreter baseline: per-instruction
// fetch, decode-cache lookup, and opcode dispatch.
func BenchmarkExec_Interpreter(b *testing.B) { benchExec(b, false) }

// BenchmarkExec_ThreadedCode runs the same loop from compiled
// superinstruction closures.
func BenchmarkExec_ThreadedCode(b *testing.B) { benchExec(b, true) }

// benchService builds the multi-tenant PAL service used by the
// BenchmarkService_* benchmarks: recommended HP dc5750, sePCR bank of 8.
// Optional mods adjust the config (e.g. enabling the batched quote
// pipeline) before the service starts.
func benchService(b *testing.B, mods ...func(*palsvc.Config)) *palsvc.Service {
	b.Helper()
	prof := platform.Recommended(platform.HPdc5750(), 8)
	prof.KeyBits = 1024
	prof.Seed = 42
	cfg := palsvc.Config{Profile: prof, Workers: 8, QueueDepth: 256}
	for _, mod := range mods {
		mod(&cfg)
	}
	s, err := palsvc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// One warm job primes the one-time caches (decode cache, memory
	// chunks, buffer pools) so the timed loop measures steady state.
	if res, err := s.Run(palsvc.Job{Name: "warm", Source: benchPAL, NoAttest: true}); err != nil || res.Err != nil {
		b.Fatal(err, res.Err)
	}
	b.Cleanup(s.Close)
	return s
}

const benchPAL = `
	ldi r0, msg
	ldi r1, 5
	svc 6
	ldi r0, 0
	svc 0
msg:	.ascii "bench"
`

// BenchmarkService_Pipeline pushes jobs through the full palsvc pipeline —
// queue, sePCR admission, SLAUNCH execution, quote generation, verification
// — keeping a window of jobs in flight so admission and the TPM-arbitration
// locks are actually contended.
func BenchmarkService_Pipeline(b *testing.B) {
	benchPipeline(b, benchService(b))
}

// BenchmarkService_PipelineBatched is the same pipeline with the batched
// quote stage enabled: under a full in-flight window the batcher coalesces
// concurrent exits into one AIK signature per batch, so signs_per_job
// drops below 1 while every job still carries its own inclusion proof.
func BenchmarkService_PipelineBatched(b *testing.B) {
	benchPipeline(b, benchService(b, func(c *palsvc.Config) {
		c.Batch = palsvc.DefaultBatchPolicy()
	}))
}

func benchPipeline(b *testing.B, s *palsvc.Service) {
	b.Helper()
	const window = 16
	inflight := make(chan *palsvc.Ticket, window)
	done := make(chan error, 1)
	go func() {
		for tk := range inflight {
			if res := tk.Wait(); res.Err != nil {
				done <- res.Err
				return
			}
		}
		done <- nil
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			tk, err := s.Submit(palsvc.Job{Name: "bench", Source: benchPAL})
			if err != nil {
				if palsvc.IsRetryable(err) {
					continue // bounded queue pushed back; resubmit
				}
				b.Fatal(err)
			}
			inflight <- tk
			break
		}
	}
	close(inflight)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	m := s.Metrics()
	b.ReportMetric(msMetric(m.Execute.P50), "vms_exec_p50")
	b.ReportMetric(msMetric(m.QuoteGen.P50), "vms_quote_p50")
	b.ReportMetric(float64(m.MaxSePCROccupancy), "max_occupancy")
	if m.CacheHits+m.CacheMisses > 0 {
		b.ReportMetric(float64(m.CacheHits)/float64(m.CacheHits+m.CacheMisses), "cache_hit_ratio")
	}
	if m.Completed > 0 && m.QuoteSigns > 0 {
		b.ReportMetric(float64(m.QuoteSigns)/float64(m.Completed), "signs_per_job")
	}
}

// benchQuoteChip builds a bare chip with n sePCR registers for the quote
// microbenchmarks.
func benchQuoteChip(b *testing.B, n int) *tpm.TPM {
	b.Helper()
	clock := sim.NewClock()
	chip, err := tpm.New(clock, lpc.NewBus(clock, lpc.FullSpeed()),
		tpm.Config{KeyBits: 1024, Seed: 42, NumSePCRs: n})
	if err != nil {
		b.Fatal(err)
	}
	return chip
}

// quoteBatchSizes are the batch widths the single-vs-batch comparison
// sweeps; width 1 is the one-signature-per-job baseline.
var quoteBatchSizes = []int{1, 4, 8}

// BenchmarkTPM_QuoteBatch measures the amortization the batched quote
// buys at the chip level: each iteration parks `size` registers in the
// Quote state and attests all of them. Width 1 uses the one-shot
// TPM_Quote (one RSA signature per job); wider batches pay one signature
// over the Merkle root for the whole set, so ns/op grows far slower than
// linearly in the width. Nonces vary per iteration so the signature memo
// cannot short-circuit the RSA operation being measured.
func BenchmarkTPM_QuoteBatch(b *testing.B) {
	for _, size := range quoteBatchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			chip := benchQuoteChip(b, size)
			meas := tpm.Measure([]byte("bench-pal"))
			park := func() []int {
				handles := make([]int, size)
				for i := 0; i < size; i++ {
					h, err := chip.AllocateSePCR(i, meas)
					if err != nil {
						b.Fatal(err)
					}
					if err := chip.ReleaseSePCR(h, i); err != nil {
						b.Fatal(err)
					}
					handles[i] = h
				}
				return handles
			}
			nonce := make([]byte, 12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				handles := park()
				binary.BigEndian.PutUint64(nonce, uint64(i))
				if size == 1 {
					if _, err := chip.QuoteSePCR(handles[0], nonce); err != nil {
						b.Fatal(err)
					}
					continue
				}
				reqs := make([]tpm.BatchRequest, size)
				for j, h := range handles {
					jn := make([]byte, 12)
					binary.BigEndian.PutUint64(jn, uint64(i))
					jn[8] = byte(j)
					reqs[j] = tpm.BatchRequest{Handle: h, Nonce: jn}
				}
				if _, err := chip.QuoteSePCRBatch(reqs, nonce, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "jobs_per_sign")
		})
	}
}

// BenchmarkService_NoAttest isolates the execution path: same pipeline but
// the sePCR is freed unquoted, skipping quote generation and RSA
// verification.
func BenchmarkService_NoAttest(b *testing.B) {
	s := benchService(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Run(palsvc.Job{Name: "bench", Source: benchPAL, NoAttest: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
